"""SM occupancy model (paper Figure 5 and Table IX).

Occupancy is the fraction of resident warp slots that are actually active.
Without batching, a single CKKS operation simply does not expose enough
threads to fill an A100 (Figure 5: under 15% occupancy even at the best
thread count); with operation-level batching, the batched kernels generate
enough thread blocks to keep the occupancy above 85% (Table IX).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .spec import GpuSpec

__all__ = ["OccupancyModel", "OccupancyResult"]


@dataclass
class OccupancyResult:
    """Occupancy and the resulting relative execution time."""

    occupancy_percent: float
    normalized_time: float
    resident_threads: int


class OccupancyModel:
    """Analytical occupancy/performance model of one kernel launch."""

    #: Per-thread working set (bytes) that competes for SM resources; beyond
    #: this budget extra threads spill and bandwidth efficiency drops.
    per_thread_state_bytes = 192.0
    #: SM register/shared-memory budget available to the kernels (bytes).
    sm_resource_bytes = 164 * 1024.0

    def __init__(self, gpu: GpuSpec) -> None:
        self.gpu = gpu

    # ------------------------------------------------------------------
    def occupancy_for_threads(self, total_threads: int, *,
                              threads_per_sm: int = 512,
                              work_elements: Optional[int] = None) -> OccupancyResult:
        """Occupancy and normalised time for an *unbatched* operation.

        ``total_threads`` is the launch size (the paper sweeps 8K/16K/32K);
        ``work_elements`` the number of data elements the kernel touches.
        """
        gpu = self.gpu
        threads_per_sm = min(threads_per_sm, gpu.max_threads_per_sm)
        resident = min(total_threads, gpu.sm_count * threads_per_sm)
        slot_fraction = resident / gpu.max_resident_threads

        # Resource pressure: as more threads share one SM, each gets fewer
        # registers and the effective IPC per thread degrades.
        pressure = (threads_per_sm * self.per_thread_state_bytes) / self.sm_resource_bytes
        efficiency = 1.0 / (1.0 + max(0.0, pressure - 1.0))

        # Memory efficiency: with more threads each one reads less data, so
        # accesses fragment, bandwidth utilisation falls and the threads
        # contend for the same cache lines (the 32K effect of Figure 5).
        if work_elements:
            elements_per_thread = max(1.0, work_elements / max(1, total_threads))
            coalescing = min(1.0, elements_per_thread / 8.0)
            contention = 1.0 + max(0.0, (resident - 16384) / 16384.0) * 1.2
        else:
            coalescing = 1.0
            contention = 1.0

        occupancy = 100.0 * slot_fraction * efficiency / contention
        throughput = slot_fraction * efficiency * (0.6 + 0.4 * coalescing) / contention
        normalized_time = 1.0 / max(throughput, 1e-9)
        return OccupancyResult(
            occupancy_percent=occupancy,
            normalized_time=normalized_time,
            resident_threads=resident,
        )

    # ------------------------------------------------------------------
    def occupancy_for_batch(self, batch_size: int, limbs: int, ring_degree: int,
                            *, threads_per_element: float = 1 / 8.0,
                            uses_tensor_cores: bool = False) -> float:
        """Occupancy (percent) of a batched kernel (Table IX).

        A batched kernel processes ``batch * limbs * N`` elements; with one
        thread per ``1/threads_per_element`` elements the launch easily
        exceeds the GPU's resident-thread capacity and occupancy saturates.
        Tensor-core kernels additionally keep the TCU pipelines busy, which
        is counted as occupancy in the paper's Nsight methodology.
        """
        gpu = self.gpu
        elements = batch_size * limbs * ring_degree
        threads = elements * threads_per_element
        saturation = min(1.0, threads / gpu.max_resident_threads)
        ceiling = 0.95 if uses_tensor_cores else 0.92
        floor_penalty = 0.06 if not uses_tensor_cores else 0.04
        occupancy = 100.0 * (ceiling * saturation - floor_penalty * (1.0 - saturation))
        return max(0.0, min(100.0, occupancy))

    def operation_occupancy(self, operation: str, batch_size: int, limbs: int,
                            ring_degree: int) -> float:
        """Occupancy of one batched CKKS operation (Table IX rows)."""
        heavy = operation.upper() in ("HMULT", "HROTATE")
        medium = operation.upper() in ("RESCALE", "CMULT")
        threads_per_element = 1 / 8.0 if heavy else (1 / 16.0 if medium else 1 / 32.0)
        return self.occupancy_for_batch(
            batch_size, limbs, ring_degree,
            threads_per_element=threads_per_element,
            uses_tensor_cores=heavy,
        )

    def table_ix(self, batch_size: int, limbs: int, ring_degree: int) -> Dict[str, float]:
        """Occupancy of all five operations (reproduces Table IX)."""
        return {
            operation: self.operation_occupancy(operation, batch_size, limbs, ring_degree)
            for operation in ("HMULT", "HROTATE", "RESCALE", "HADD", "CMULT")
        }
