"""GPU hardware descriptions used by the performance model.

The paper evaluates on an NVIDIA A100-SXM-40GB, re-runs on a V100 for a
like-for-like comparison with 100x [33], and uses a GTX 1080Ti model inside
GPGPUSim for the stall study.  :class:`GpuSpec` captures the throughput and
capacity numbers of those parts that the analytical cost model needs; the
values are the public datasheet figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["GpuSpec", "A100", "V100", "GTX1080TI", "GPU_SPECS", "get_gpu"]


@dataclass(frozen=True)
class GpuSpec:
    """Peak capabilities of one GPU."""

    name: str
    sm_count: int
    cuda_cores_per_sm: int
    tensor_cores_per_sm: int
    boost_clock_ghz: float
    memory_bandwidth_gbps: float            # GB/s
    vram_gb: float
    max_threads_per_sm: int
    #: INT32 operations per CUDA core per cycle (MAD counted as one).
    int32_ops_per_core_per_cycle: float
    #: INT8 MAC operations per tensor core per cycle.
    int8_macs_per_tensor_core_per_cycle: float
    tdp_watts: float

    # ------------------------------------------------------------------
    @property
    def cuda_core_count(self) -> int:
        return self.sm_count * self.cuda_cores_per_sm

    @property
    def tensor_core_count(self) -> int:
        return self.sm_count * self.tensor_cores_per_sm

    @property
    def peak_int32_ops_per_second(self) -> float:
        """Peak INT32 throughput of the CUDA cores (ops/s)."""
        return (self.cuda_core_count * self.int32_ops_per_core_per_cycle
                * self.boost_clock_ghz * 1e9)

    @property
    def peak_tensor_int8_macs_per_second(self) -> float:
        """Peak INT8 MAC throughput of the tensor cores (MACs/s)."""
        return (self.tensor_core_count * self.int8_macs_per_tensor_core_per_cycle
                * self.boost_clock_ghz * 1e9)

    @property
    def memory_bandwidth_bytes_per_second(self) -> float:
        return self.memory_bandwidth_gbps * 1e9

    @property
    def vram_bytes(self) -> float:
        return self.vram_gb * (1 << 30)

    @property
    def max_resident_threads(self) -> int:
        return self.sm_count * self.max_threads_per_sm


#: NVIDIA A100-SXM-40GB (Ampere).  624 TOPS INT8 on tensor cores.
A100 = GpuSpec(
    name="A100",
    sm_count=108,
    cuda_cores_per_sm=64,
    tensor_cores_per_sm=4,
    boost_clock_ghz=1.41,
    memory_bandwidth_gbps=1555.0,
    vram_gb=40.0,
    max_threads_per_sm=2048,
    int32_ops_per_core_per_cycle=1.0,
    int8_macs_per_tensor_core_per_cycle=1024.0,
    tdp_watts=400.0,
)

#: NVIDIA Tesla V100 (Volta), 16 GB variant used by 100x and PrivFT.
V100 = GpuSpec(
    name="V100",
    sm_count=80,
    cuda_cores_per_sm=64,
    tensor_cores_per_sm=8,
    boost_clock_ghz=1.53,
    memory_bandwidth_gbps=900.0,
    vram_gb=16.0,
    max_threads_per_sm=2048,
    int32_ops_per_core_per_cycle=1.0,
    int8_macs_per_tensor_core_per_cycle=128.0,
    tdp_watts=300.0,
)

#: GTX 1080Ti (Pascal) — the GPGPUSim target of the stall study; no tensor cores.
GTX1080TI = GpuSpec(
    name="GTX1080Ti",
    sm_count=28,
    cuda_cores_per_sm=128,
    tensor_cores_per_sm=0,
    boost_clock_ghz=1.58,
    memory_bandwidth_gbps=484.0,
    vram_gb=11.0,
    max_threads_per_sm=2048,
    int32_ops_per_core_per_cycle=1.0,
    int8_macs_per_tensor_core_per_cycle=0.0,
    tdp_watts=250.0,
)

GPU_SPECS: Dict[str, GpuSpec] = {spec.name: spec for spec in (A100, V100, GTX1080TI)}


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU spec by name (case-insensitive)."""
    for key, spec in GPU_SPECS.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError("unknown GPU %r; available: %s" % (name, sorted(GPU_SPECS)))
