"""DRAM traffic and bandwidth-efficiency model (paper Figure 9 / Section IV-D).

The operation-level batching of TensorFHE only pays off if the batched data
can be streamed from VRAM contiguously.  The original ``(B, L, N)`` layout
stores each operation's limbs together, so gathering the same-level limb of
every batched operation touches ``B`` separate regions; the reorganised
``(L, B, N)`` layout makes that gather one contiguous block.  This module
quantifies the effect: the effective bandwidth is the peak bandwidth scaled
by an efficiency factor that grows with the contiguous run length.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import GpuSpec

__all__ = ["MemoryTrafficModel"]

_DRAM_TRANSACTION_BYTES = 128.0
#: Run length (bytes) beyond which streaming reaches peak efficiency.
_STREAMING_SATURATION_BYTES = 1 << 20


@dataclass
class MemoryTrafficModel:
    """Effective-bandwidth model parameterised by access contiguity."""

    gpu: GpuSpec
    peak_efficiency: float = 0.88   # achievable fraction of datasheet bandwidth
    random_efficiency: float = 0.18  # efficiency of scattered 128B transactions

    def efficiency_for_run_length(self, contiguous_bytes: float) -> float:
        """Bandwidth efficiency for accesses in runs of ``contiguous_bytes``."""
        if contiguous_bytes <= _DRAM_TRANSACTION_BYTES:
            return self.random_efficiency
        span = min(1.0, contiguous_bytes / _STREAMING_SATURATION_BYTES)
        return self.random_efficiency + (self.peak_efficiency - self.random_efficiency) * span

    def effective_bandwidth(self, contiguous_bytes: float) -> float:
        """Bytes per second deliverable for the given access pattern."""
        return (self.gpu.memory_bandwidth_bytes_per_second
                * self.efficiency_for_run_length(contiguous_bytes))

    def transfer_time(self, total_bytes: float, contiguous_bytes: float) -> float:
        """Seconds needed to move ``total_bytes`` with the given run length."""
        if total_bytes <= 0:
            return 0.0
        return total_bytes / self.effective_bandwidth(contiguous_bytes)

    # ------------------------------------------------------------------
    def layout_run_length(self, layout: str, batch_size: int, ring_degree: int,
                          word_bytes: int = 4) -> float:
        """Contiguous run length when packing one level across the batch.

        ``(B, L, N)``: each operation's level-``l`` entry is a separate run
        of ``N * word`` bytes.  ``(L, B, N)``: the whole pack is one run of
        ``B * N * word`` bytes (paper Figure 9b).
        """
        entry = ring_degree * word_bytes
        normalized = layout.replace(" ", "").upper()
        if normalized in ("(B,L,N)", "B_L_N", "BLN"):
            return float(entry)
        if normalized in ("(L,B,N)", "L_B_N", "LBN"):
            return float(entry * batch_size)
        raise ValueError("unknown layout %r" % layout)

    def layout_speedup(self, batch_size: int, ring_degree: int,
                       word_bytes: int = 4) -> float:
        """Bandwidth-limited speedup of the ``(L,B,N)`` layout over ``(B,L,N)``."""
        slow = self.efficiency_for_run_length(
            self.layout_run_length("(B,L,N)", batch_size, ring_degree, word_bytes))
        fast = self.efficiency_for_run_length(
            self.layout_run_length("(L,B,N)", batch_size, ring_degree, word_bytes))
        return fast / slow
