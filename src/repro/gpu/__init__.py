"""GPGPU performance-model substrate: specs, pipeline stalls, occupancy, memory."""

from .memory import MemoryTrafficModel
from .occupancy import OccupancyModel, OccupancyResult
from .pipeline import (
    BUILTIN_PROFILES,
    BUTTERFLY_NTT,
    DWT,
    FFT,
    GEMM_NTT,
    AlgorithmProfile,
    PipelineStallModel,
    StallCategory,
)
from .spec import A100, GPU_SPECS, GTX1080TI, V100, GpuSpec, get_gpu

__all__ = [
    "GpuSpec",
    "A100",
    "V100",
    "GTX1080TI",
    "GPU_SPECS",
    "get_gpu",
    "PipelineStallModel",
    "AlgorithmProfile",
    "StallCategory",
    "BUTTERFLY_NTT",
    "FFT",
    "DWT",
    "GEMM_NTT",
    "BUILTIN_PROFILES",
    "OccupancyModel",
    "OccupancyResult",
    "MemoryTrafficModel",
]
