"""SIMT pipeline-stall model (paper Figures 4 and 10).

The paper's motivation section runs butterfly-based kernels (NTT, FFT, DWT)
through GPGPUSim and attributes ~43% of NTT cycles to pipeline stalls, half
of them read-after-write (RAW) stalls caused by the data dependency between
butterfly stages.  Re-formulating the NTT as GEMMs removes most of those
dependencies (Figure 10).

We substitute GPGPUSim with an analytical in-order SIMT pipeline model: an
algorithm is described by structural properties (dependent-stage count,
operations per element, synchronisation barriers, memory traffic, code
footprint) and the model converts them into the fraction of issue slots
lost to each stall category.  The conversion constants are calibrated once
against the paper's reported NTT breakdown and then applied unchanged to
all algorithms, so the *relative* behaviour (butterfly vs GEMM, NTT vs FFT
vs DWT) is produced by the structure, not by per-algorithm fitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["StallCategory", "AlgorithmProfile", "PipelineStallModel",
           "BUTTERFLY_NTT", "FFT", "DWT", "GEMM_NTT", "BUILTIN_PROFILES"]


class StallCategory:
    """Stall cause labels used in Figures 4 and 10."""

    RAW = "RAW Stall"
    LONG_LATENCY = "Long Latency Stall"
    L1I_MISS = "L1I Miss Stall"
    CONTROL = "Control Hazard Stall"
    FUNCTION_UNIT = "Function Unit Busy Stall"
    BARRIER = "Barrier Stall"

    ALL = (RAW, LONG_LATENCY, L1I_MISS, CONTROL, FUNCTION_UNIT, BARRIER)


@dataclass(frozen=True)
class AlgorithmProfile:
    """Structural description of a kernel for the stall model.

    Attributes
    ----------
    dependent_stages:
        Length of the serial dependency chain per output element (log2 N
        for butterfly networks, ~1 for GEMM accumulation since the
        accumulator chain pipelines freely across the many output elements).
    ops_per_element:
        Arithmetic operations per element per stage.
    memory_ops_per_element:
        Global-memory accesses per element per stage.
    barriers_per_stage:
        Block-wide synchronisations per stage.
    branch_density:
        Fraction of instructions that are (divergent) branches.
    code_footprint_kb:
        Static code size, a proxy for instruction-cache pressure.
    modulo_ops_per_element:
        Expensive modulo reductions per element per stage (these occupy the
        integer units for many cycles and show up as function-unit stalls).
    thread_block_size:
        Threads per block used when the paper measured the kernel.
    """

    name: str
    dependent_stages: float
    ops_per_element: float
    memory_ops_per_element: float
    barriers_per_stage: float
    branch_density: float
    code_footprint_kb: float
    modulo_ops_per_element: float
    thread_block_size: int = 128


# Calibration constants (fit once to the paper's NTT column of Figure 4 and
# used unchanged for every other algorithm).
_RAW_WEIGHT = 0.38
_LATENCY_WEIGHT = 0.042
_L1I_WEIGHT = 0.11
_CONTROL_WEIGHT = 0.55
_FUNCTION_UNIT_WEIGHT = 0.028
_BARRIER_WEIGHT = 0.036
_ILP_HIDE_FACTOR = 26.0


@dataclass
class PipelineStallModel:
    """Convert an :class:`AlgorithmProfile` into a stall-cycle breakdown."""

    #: Warps available for latency hiding per scheduler; more warps hide a
    #: larger share of RAW and long-latency stalls.
    warps_per_scheduler: int = 8
    results_cache: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def stall_breakdown(self, profile: AlgorithmProfile) -> Dict[str, float]:
        """Return stall fractions (percent of total cycles) by category."""
        if profile.name in self.results_cache:
            return dict(self.results_cache[profile.name])
        hide = min(1.0, self.warps_per_scheduler / _ILP_HIDE_FACTOR
                   * (profile.thread_block_size / 128.0))
        exposed = 1.0 - hide

        raw = _RAW_WEIGHT * exposed * (
            profile.dependent_stages / (profile.dependent_stages + profile.ops_per_element)
        )
        latency = _LATENCY_WEIGHT * exposed * profile.memory_ops_per_element
        l1i = _L1I_WEIGHT * min(1.0, profile.code_footprint_kb / 48.0)
        control = _CONTROL_WEIGHT * profile.branch_density
        function_unit = _FUNCTION_UNIT_WEIGHT * profile.modulo_ops_per_element
        barrier = _BARRIER_WEIGHT * profile.barriers_per_stage * (
            profile.dependent_stages / 16.0
        )
        breakdown = {
            StallCategory.RAW: 100.0 * raw,
            StallCategory.LONG_LATENCY: 100.0 * latency,
            StallCategory.L1I_MISS: 100.0 * l1i,
            StallCategory.CONTROL: 100.0 * control,
            StallCategory.FUNCTION_UNIT: 100.0 * function_unit,
            StallCategory.BARRIER: 100.0 * barrier,
        }
        self.results_cache[profile.name] = breakdown
        return dict(breakdown)

    def total_stall_fraction(self, profile: AlgorithmProfile) -> float:
        """Total percentage of cycles lost to (unhidden) stalls."""
        return sum(self.stall_breakdown(profile).values())

    def compare(self, baseline: AlgorithmProfile,
                optimized: AlgorithmProfile) -> Dict[str, float]:
        """Per-category reduction (in percentage points) baseline → optimized."""
        base = self.stall_breakdown(baseline)
        new = self.stall_breakdown(optimized)
        return {category: base[category] - new[category] for category in base}

    def speedup_estimate(self, baseline: AlgorithmProfile,
                         optimized: AlgorithmProfile,
                         compute_overhead: float = 0.0) -> float:
        """Speedup from stall reduction alone (Fig. 10 discussion).

        Both variants perform (roughly) the same useful work; the optimized
        one adds ``compute_overhead`` extra computation (1.2% for the GEMM
        formulation in the paper) but loses fewer cycles to stalls.  With
        busy-cycle fractions ``b`` and ``b'``, the cycle counts relate as
        ``T' = T * b * (1 + overhead) / b'`` and the speedup is ``T / T'``.
        """
        base_busy = (100.0 - self.total_stall_fraction(baseline)) / 100.0
        new_busy = (100.0 - self.total_stall_fraction(optimized)) / 100.0
        optimized_time = base_busy * (1.0 + compute_overhead) / new_busy
        return 1.0 / optimized_time


# ----------------------------------------------------------------------
# Profiles of the algorithms that appear in Figures 4 and 10.
# ----------------------------------------------------------------------
BUTTERFLY_NTT = AlgorithmProfile(
    name="NTT",
    dependent_stages=16.0,          # log2(N) = 16 dependent butterfly stages
    ops_per_element=4.0,            # mul + add/sub + two corrections
    memory_ops_per_element=2.0,
    barriers_per_stage=1.0,
    branch_density=0.035,
    code_footprint_kb=18.0,
    modulo_ops_per_element=2.0,     # GPUs lack hardware modulo support
    thread_block_size=128,
)

FFT = AlgorithmProfile(
    name="FFT",
    dependent_stages=16.0,
    ops_per_element=10.0,           # complex butterflies carry more arithmetic
    memory_ops_per_element=2.0,
    barriers_per_stage=1.0,
    branch_density=0.03,
    code_footprint_kb=14.0,
    modulo_ops_per_element=0.0,
    thread_block_size=192,
)

DWT = AlgorithmProfile(
    name="DWT",
    dependent_stages=10.0,
    ops_per_element=8.0,
    memory_ops_per_element=3.0,
    barriers_per_stage=0.5,
    branch_density=0.05,
    code_footprint_kb=10.0,
    modulo_ops_per_element=0.0,
    thread_block_size=256,
)

#: The GEMM formulation of the NTT (TensorFHE-CO): no inter-stage
#: dependencies, long independent dot products, a single final reduction.
GEMM_NTT = AlgorithmProfile(
    name="TensorFHE-CO",
    dependent_stages=1.0,
    ops_per_element=8.0,
    memory_ops_per_element=1.2,     # blocked GEMM reuses operands in shared memory
    barriers_per_stage=0.25,
    branch_density=0.012,
    code_footprint_kb=9.0,
    modulo_ops_per_element=0.06,    # one reduction per output element
    thread_block_size=128,
)

BUILTIN_PROFILES = {profile.name: profile
                    for profile in (BUTTERFLY_NTT, FFT, DWT, GEMM_NTT)}
