"""CkksContext: the shared state of one CKKS instance.

Owns the RNS basis (prime chain + special primes), the NTT planner (which
caches one engine per ``(N, q)``), the kernel-layer instrumentation and the
encoder.  Every other CKKS component (key generator, encryptor, evaluator,
bootstrapper) receives the context instead of re-deriving parameters.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..backend.registry import resolve_backend
from ..kernels.base import KernelContext
from ..numtheory.floatmod import get_barrett_chain
from ..numtheory.modular import mod_inverse
from ..ntt.planner import NttPlanner
from ..rns.basis import RnsBasis, build_default_basis
from .encoder import CkksEncoder
from .params import CkksParameters, get_preset

__all__ = ["CkksContext"]


class CkksContext:
    """Everything derived from a :class:`CkksParameters` instance."""

    def __init__(self, parameters: CkksParameters, *, seed: Optional[int] = None,
                 backend=None) -> None:
        self.parameters = parameters
        # The generalized key-switching technique requires P >= max_j Q_j
        # (Section II-B of the paper), i.e. at least as many special primes
        # as there are ciphertext primes per decomposition group (alpha).
        special_count = max(parameters.special_prime_count, parameters.alpha)
        self.basis: RnsBasis = build_default_basis(
            parameters.ring_degree,
            parameters.level_count,
            prime_bits=parameters.prime_bits,
            special_count=special_count,
            special_bits=parameters.special_prime_bits,
        )
        # ``backend`` pins the compute substrate for this instance's NTT
        # engines (name / ArrayBackend instance / None for the process-wide
        # active backend selected by REPRO_BACKEND).  The pin covers the
        # engine GEMM launches; element-wise mat-mod kernels and the Conv
        # GEMM always follow the process-wide active backend.
        self.planner = NttPlanner(parameters.ntt_engine, backend=backend)
        self.kernels = KernelContext(self.planner)
        self.encoder = CkksEncoder(parameters)
        self.rng = np.random.default_rng(seed)
        # Per-level q_last^{-1} mod q_i columns used by RESCALE, built once
        # per basis tuple so the evaluator never recomputes mod_inverse.
        self._rescale_inverse_cache: Dict[Tuple[int, ...], np.ndarray] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_preset(cls, name: str, *, seed: Optional[int] = None,
                    backend=None) -> "CkksContext":
        """Build a context from a named preset (see :mod:`repro.ckks.params`)."""
        return cls(get_preset(name), seed=seed, backend=backend)

    # ------------------------------------------------------------------
    @property
    def ring_degree(self) -> int:
        return self.parameters.ring_degree

    @property
    def max_level(self) -> int:
        return self.parameters.max_level

    @property
    def slot_count(self) -> int:
        return self.parameters.slot_count

    @property
    def scale(self) -> float:
        return self.parameters.scale

    def moduli_at_level(self, level: int) -> Tuple[int, ...]:
        """Ciphertext primes active at ``level``."""
        return self.basis.primes_at_level(level)

    def extended_moduli_at_level(self, level: int) -> Tuple[int, ...]:
        """Active primes plus the special primes (key-switching basis)."""
        return self.basis.extended_primes_at_level(level)

    def modulus_at_level(self, level: int) -> int:
        """The integer modulus ``Q_level``."""
        return self.basis.modulus_at_level(level)

    def decomposition_groups(self, level: int) -> Sequence[Tuple[int, ...]]:
        """dnum decomposition groups of the active chain at ``level``."""
        return self.basis.decomposition_groups(level, self.parameters.dnum)

    def rescale_inverses(self, moduli: Sequence[int]) -> np.ndarray:
        """Cached ``(limbs-1, 1)`` column of ``q_last^{-1} mod q_i``.

        ``moduli`` is the basis *before* the rescale (its last prime is the
        one being dropped).  The column feeds the evaluator's vectorised
        RESCALE; building it is one-time precomputation per level.
        """
        key = tuple(int(q) for q in moduli)
        if len(key) < 2:
            raise ValueError("rescaling requires at least two limbs")
        column = self._rescale_inverse_cache.get(key)
        if column is None:
            last = key[-1]
            column = np.asarray(
                [mod_inverse(last % q, q) for q in key[:-1]], dtype=np.int64
            )[:, None]
            self._rescale_inverse_cache[key] = column
        return column

    def barrett_chain(self, moduli: Sequence[int]):
        """Float64 Barrett constants for ``moduli`` (process-wide cached).

        One :class:`~repro.numtheory.floatmod.BarrettChain` per prime
        chain, shared with the NTT twiddle stacks: the float-resident
        element-wise kernels (rescale / ModDown chains, Hadamard products)
        reduce with these precomputed round-up reciprocals instead of
        int64 ``%``.
        """
        return get_barrett_chain(moduli)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Summary of the instance (parameters plus derived prime counts)."""
        info = dict(self.parameters.describe())
        info["ciphertext_primes"] = len(self.basis.ciphertext_primes)
        info["special_primes"] = len(self.basis.special_primes)
        info["log_q"] = round(sum(float(np.log2(q)) for q in self.basis.ciphertext_primes), 1)
        info["compute_backend"] = resolve_backend(self.planner.backend).name
        return info
