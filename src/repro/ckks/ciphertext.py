"""Plaintext and ciphertext containers.

A CKKS ciphertext is the polynomial pair ``(c0, c1)`` with the invariant
``c0 + c1*s ≈ Delta * m`` modulo the level modulus.  Both containers track
the encoding scale and the level so that the evaluator can enforce the
usual CKKS bookkeeping (matching scales before addition, rescaling after
multiplication, level alignment).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rns.poly import RnsPolynomial

__all__ = ["Plaintext", "Ciphertext"]


@dataclass
class Plaintext:
    """An encoded (but unencrypted) polynomial with its scale and level."""

    polynomial: RnsPolynomial
    scale: float
    level: int

    @property
    def ring_degree(self) -> int:
        return self.polynomial.ring_degree

    def copy(self) -> "Plaintext":
        return Plaintext(self.polynomial.copy(), self.scale, self.level)


@dataclass
class Ciphertext:
    """A two-component CKKS ciphertext ``(c0, c1)``."""

    c0: RnsPolynomial
    c1: RnsPolynomial
    scale: float
    level: int

    def __post_init__(self) -> None:
        if self.c0.ring_degree != self.c1.ring_degree:
            raise ValueError("ciphertext components have different ring degrees")
        if self.c0.moduli != self.c1.moduli:
            raise ValueError("ciphertext components have different RNS bases")

    @property
    def ring_degree(self) -> int:
        return self.c0.ring_degree

    @property
    def moduli(self):
        """Active prime chain of this ciphertext."""
        return self.c0.moduli

    @property
    def limb_count(self) -> int:
        return self.c0.limb_count

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.c0.copy(), self.c1.copy(), self.scale, self.level)

    def describe(self) -> str:
        """Short human-readable summary (level, scale, degree)."""
        return "Ciphertext(N=%d, level=%d, scale=2^%.1f)" % (
            self.ring_degree, self.level, float(self.scale).bit_length()
            if isinstance(self.scale, int) else __import__("math").log2(self.scale),
        )
