"""CKKS encoder: complex slot vectors <-> integer polynomial coefficients.

Implements the canonical-embedding encoding of CKKS.  A slot vector
``z ∈ C^(N/2)`` is mapped to the real polynomial ``m(X)`` whose evaluations
at the primitive ``2N``-th roots of unity ``zeta^(5^j)`` equal ``Delta*z_j``
(the remaining conjugate roots carry the conjugate values, which keeps the
coefficients real).  The transform and its inverse are computed with a
length-``2N`` FFT, so encoding is ``O(N log N)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .params import CkksParameters

__all__ = ["CkksEncoder"]


class CkksEncoder:
    """Encode/decode between complex slot vectors and coefficient vectors."""

    def __init__(self, parameters: CkksParameters) -> None:
        self.parameters = parameters
        self.ring_degree = parameters.ring_degree
        self.slot_count = parameters.slot_count
        # Exponents 5^j mod 2N pick one root from each conjugate pair.
        modulus = 2 * self.ring_degree
        exponents = np.empty(self.slot_count, dtype=np.int64)
        power = 1
        for j in range(self.slot_count):
            exponents[j] = power
            power = (power * 5) % modulus
        self.root_exponents = exponents
        self.conjugate_exponents = (modulus - exponents) % modulus

    # ------------------------------------------------------------------
    def encode(self, values: Sequence[complex], scale: Optional[float] = None) -> np.ndarray:
        """Encode a slot vector into scaled integer coefficients.

        Shorter inputs are zero-padded; longer inputs are rejected.  The
        returned array contains signed integers (the caller reduces them
        into whatever RNS basis it needs).
        """
        scale = self.parameters.scale if scale is None else float(scale)
        slots = np.zeros(self.slot_count, dtype=np.complex128)
        values = np.asarray(values, dtype=np.complex128)
        if values.size > self.slot_count:
            raise ValueError(
                "too many values: %d > %d slots" % (values.size, self.slot_count)
            )
        slots[: values.size] = values
        # Spread the slot values (and conjugates) over the odd spectrum of a
        # length-2N transform, then one FFT gives the coefficients.
        spectrum = np.zeros(2 * self.ring_degree, dtype=np.complex128)
        spectrum[self.root_exponents] = slots * scale
        spectrum[self.conjugate_exponents] = np.conj(slots) * scale
        # m_k = (1/N) * sum_a spectrum[a] * exp(-2*pi*i*a*k / 2N)
        coefficients = np.fft.fft(spectrum)[: self.ring_degree] / self.ring_degree
        return np.round(coefficients.real).astype(object)

    def decode(self, coefficients: Sequence[int], scale: Optional[float] = None) -> np.ndarray:
        """Decode integer coefficients back into a complex slot vector."""
        scale = self.parameters.scale if scale is None else float(scale)
        coefficients = np.asarray([float(c) for c in coefficients], dtype=np.float64)
        if coefficients.size != self.ring_degree:
            raise ValueError(
                "expected %d coefficients, got %d" % (self.ring_degree, coefficients.size)
            )
        padded = np.zeros(2 * self.ring_degree, dtype=np.complex128)
        padded[: self.ring_degree] = coefficients
        # m(zeta^a) = sum_k m_k exp(+2*pi*i*a*k / 2N) = (2N * ifft(padded))[a]
        evaluations = np.fft.ifft(padded) * (2 * self.ring_degree)
        return evaluations[self.root_exponents] / scale

    # ------------------------------------------------------------------
    def encode_real(self, values: Sequence[float], scale: Optional[float] = None) -> np.ndarray:
        """Encode a real-valued vector (convenience wrapper)."""
        return self.encode(np.asarray(values, dtype=np.float64), scale)

    def decode_real(self, coefficients: Sequence[int], scale: Optional[float] = None) -> np.ndarray:
        """Decode and return only the real parts of the slots."""
        return self.decode(coefficients, scale).real

    def max_encodable_magnitude(self, level_modulus: int, scale: Optional[float] = None) -> float:
        """Largest slot magnitude that keeps coefficients below ``q/2``.

        A rough bound used by input validation in the examples: the
        coefficients of an encoded vector are bounded by ``scale * max|z| *
        N`` in the worst case, which must stay below half the level modulus
        for decryption to recover the message.
        """
        scale = self.parameters.scale if scale is None else float(scale)
        return level_modulus / (2.0 * scale * self.ring_degree)

    def slot_rotation(self, values: Sequence[complex], steps: int) -> List[complex]:
        """Plaintext slot rotation (the reference behaviour for HROTATE)."""
        values = list(values)
        if len(values) != self.slot_count:
            values = values + [0] * (self.slot_count - len(values))
        steps %= self.slot_count
        return values[steps:] + values[:steps]
