"""CKKS parameter sets, including the paper's Table V configurations.

Two kinds of parameter sets coexist:

* *functional* presets (``toy``, ``small``, ``medium``) with reduced ring
  degree and 28-bit primes, used by the tests and the runnable examples —
  the CKKS algorithms are degree-agnostic, so correctness shown at N=2^10
  carries over;
* the *paper* presets of Table V (``default``, ``resnet20``, ``lr``,
  ``lstm``, ``packed_bootstrapping``), which the performance model and the
  benchmarks use to reproduce the evaluation at the paper's exact
  parameters.  They can also be instantiated functionally, but at N=2^16
  pure-Python execution is impractically slow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..ntt.planner import DEFAULT_ENGINE

__all__ = ["CkksParameters", "PAPER_PARAMETERS", "FUNCTIONAL_PARAMETERS", "get_preset"]


@dataclass(frozen=True)
class CkksParameters:
    """Static parameters of one CKKS instance.

    Attributes
    ----------
    ring_degree:
        Polynomial degree ``N`` (power of two); ``N/2`` complex slots.
    level_count:
        Number of ciphertext primes, i.e. ``L + 1``.
    scale_bits:
        ``log2`` of the encoding scale ``Delta``.
    prime_bits:
        Bit width of the ciphertext chain primes (kept close to
        ``scale_bits`` so rescaling preserves the scale).
    special_prime_count:
        ``K``, the number of special key-switching primes.
    special_prime_bits:
        Bit width of the special primes.
    dnum:
        Decomposition number of the generalized key switching.
    error_std:
        Standard deviation of the LWE error distribution.
    secret_hamming_weight:
        Hamming weight of the sparse ternary secret (``None`` = dense).
    ntt_engine:
        Name of the NTT engine the functional stack uses.
    batch_size:
        Default operation-level batch size (paper Table V, used by the
        performance model).
    """

    ring_degree: int
    level_count: int
    scale_bits: int = 28
    prime_bits: int = 28
    special_prime_count: int = 1
    special_prime_bits: int = 30
    dnum: int = 3
    error_std: float = 3.2
    secret_hamming_weight: Optional[int] = 64
    ntt_engine: str = DEFAULT_ENGINE
    batch_size: int = 128
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.ring_degree < 8 or self.ring_degree & (self.ring_degree - 1):
            raise ValueError("ring_degree must be a power of two >= 8")
        if self.level_count < 1:
            raise ValueError("level_count must be at least 1")
        if self.dnum < 1:
            raise ValueError("dnum must be at least 1")

    # ------------------------------------------------------------------
    @property
    def max_level(self) -> int:
        """Maximum multiplicative level ``L``."""
        return self.level_count - 1

    @property
    def slot_count(self) -> int:
        """Number of complex slots (``N / 2``)."""
        return self.ring_degree // 2

    @property
    def scale(self) -> float:
        """The encoding scale ``Delta``."""
        return float(1 << self.scale_bits)

    @property
    def log_pq(self) -> int:
        """Approximate ``log2(P * Q)`` (the Table V ``logPQ`` column)."""
        return (self.level_count * self.prime_bits
                + self.special_prime_count * self.special_prime_bits)

    @property
    def alpha(self) -> int:
        """Number of primes per key-switching decomposition group."""
        return math.ceil(self.level_count / self.dnum)

    def describe(self) -> Dict[str, object]:
        """A human-readable summary dictionary (used in reports)."""
        return {
            "name": self.name,
            "N": self.ring_degree,
            "L": self.max_level,
            "K": self.special_prime_count,
            "dnum": self.dnum,
            "logPQ": self.log_pq,
            "batch_size": self.batch_size,
            "ntt_engine": self.ntt_engine,
        }


def _paper(name: str, ring_degree: int, level_count: int, special: int,
           batch_size: int, dnum: int = 5) -> CkksParameters:
    """Build a Table V preset (35-bit-scale class parameters, model use)."""
    return CkksParameters(
        ring_degree=ring_degree,
        level_count=level_count,
        scale_bits=28,
        prime_bits=28,
        special_prime_count=special,
        special_prime_bits=30,
        dnum=dnum,
        batch_size=batch_size,
        name=name,
    )


#: Table V of the paper.  ``level_count`` is ``L + 1``.
PAPER_PARAMETERS: Dict[str, CkksParameters] = {
    "default": _paper("default", 1 << 16, 45, 1, 128),
    "resnet20": _paper("resnet20", 1 << 16, 30, 1, 64),
    "lr": _paper("lr", 1 << 16, 39, 1, 64),
    "lstm": _paper("lstm", 1 << 15, 26, 1, 32),
    "packed_bootstrapping": _paper("packed_bootstrapping", 1 << 16, 58, 1, 32),
}

#: Reduced-size presets for functional tests and examples.
FUNCTIONAL_PARAMETERS: Dict[str, CkksParameters] = {
    "toy": CkksParameters(ring_degree=1 << 6, level_count=3, dnum=3,
                          secret_hamming_weight=8, name="toy"),
    "small": CkksParameters(ring_degree=1 << 8, level_count=4, dnum=2,
                            secret_hamming_weight=16, name="small"),
    "medium": CkksParameters(ring_degree=1 << 10, level_count=6, dnum=3,
                             secret_hamming_weight=32, name="medium"),
    "large": CkksParameters(ring_degree=1 << 12, level_count=8, dnum=4,
                            secret_hamming_weight=64, name="large"),
}


def get_preset(name: str) -> CkksParameters:
    """Look up a preset by name in the functional and paper tables."""
    if name in FUNCTIONAL_PARAMETERS:
        return FUNCTIONAL_PARAMETERS[name]
    if name in PAPER_PARAMETERS:
        return PAPER_PARAMETERS[name]
    raise KeyError(
        "unknown parameter preset %r; available: %s"
        % (name, sorted(set(FUNCTIONAL_PARAMETERS) | set(PAPER_PARAMETERS)))
    )
