"""B-fused generalized key switching (paper Algorithm 1 across streams).

:class:`KeySwitcher` executes Algorithm 1 for one polynomial; its dnum
decomposition loop is limb-batched but still runs once per ciphertext, so a
batch of *B* HMULT/rotation streams pays ``B`` separate launch sequences
for the most expensive CKKS primitive.  :class:`BatchedKeySwitcher` fuses
the whole stream batch:

* **Dcomp** — the dnum restriction of every stream is one gather into a
  ``(B, dnum, L, N)`` residue tensor;
* **ModUp** — one batched Conv per decomposition group
  (:meth:`~repro.rns.modup.ModUp.apply_batch`), the batch folded into the
  row-moduli GEMM's free dimension;
* **NTT** — a single :meth:`~repro.ntt.planner.NttPlanner.forward_ops`
  engine call transforms all ``B * dnum`` extended slices at once;
* **Inner-product** — one fused Hada-Mult funnel launch per ``(b, a)``
  component over the ``(B*dnum*L', N)`` stack, with the dnum axis folded by
  an exact modular reduction;
* **ModDown** — both accumulators of every stream return to the ciphertext
  basis through one ``inverse_ops`` call and one batched Conv
  (:meth:`~repro.rns.moddown.ModDown.apply_batch`).

Results are bit-identical to looping :meth:`KeySwitcher.switch` over the
streams, and the kernel counters record exactly the same invocations and
limb-vectors (via :meth:`~repro.kernels.base.KernelCounter.record_batch`).
Degenerate batches never stack: an empty batch returns immediately and a
single stream delegates to the sequential switcher, so no ``(B, dnum, L,
N)`` temporaries are allocated unless at least two streams fuse.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..backend.blas_backend import FloatResidues
from ..backend.residency import (
    DeviceBuffer,
    as_ndarray,
    concatenate_arrays,
    contiguous,
    is_buffer,
    stack_arrays,
)
from ..kernels.base import KernelName
from ..numtheory.floatmod import get_barrett_chain
from ..numtheory.modular import mat_mod_add, mat_mod_mul, mat_mod_reduce
from ..rns.poly import PolyDomain, RnsPolynomial
from .context import CkksContext
from .keys import SwitchKey
from .keyswitch import KeySwitcher

__all__ = ["BatchedKeySwitcher"]


class BatchedKeySwitcher:
    """Key switching for a whole stream batch as fused launches."""

    def __init__(self, context: CkksContext, *,
                 key_switcher: Optional[KeySwitcher] = None) -> None:
        self.context = context
        #: Sequential switcher: shares its ModUp/ModDown caches with the
        #: fused path and executes degenerate single-stream batches.
        self.key_switcher = (key_switcher if key_switcher is not None
                             else KeySwitcher(context))
        # Stacked (dnum * L', N) images of each SwitchKeyLevel's (b, a)
        # pairs, built once per level.  Keyed by object identity; the
        # stored reference pins the level object so its id cannot be
        # recycled.  LRU-bounded: each entry duplicates a level's key
        # residues, and a long-lived context can touch arbitrarily many
        # (rotation key, level) combinations.
        self._key_stack_cache = OrderedDict()

    def switch_many(self, polynomials: Sequence[RnsPolynomial],
                    switch_key: SwitchKey, level: int
                    ) -> List[Tuple[RnsPolynomial, RnsPolynomial]]:
        """Key-switch ``B`` coefficient-domain polynomials at ``level``.

        All polynomials must live on the level's active basis (the same
        precondition :meth:`KeySwitcher.switch` enforces per stream).
        Returns one ``(c0, c1)`` pair per stream, in order.
        """
        polynomials = list(polynomials)
        if not polynomials:
            return []
        if len(polynomials) == 1:
            # Degenerate batch: no stacked temporaries, same launches as
            # the sequential path.
            return [self.key_switcher.switch(polynomials[0], switch_key, level)]

        context = self.context
        counter = context.kernels.counter
        active = context.moduli_at_level(level)
        extended = context.extended_moduli_at_level(level)
        for polynomial in polynomials:
            if polynomial.domain != PolyDomain.COEFFICIENT:
                raise ValueError(
                    "key switching expects coefficient-domain polynomials")
            if tuple(polynomial.moduli) != active:
                raise ValueError(
                    "polynomial basis does not match the requested level")
        key_level = switch_key.at_level(level)

        batch = len(polynomials)
        ring_degree = context.ring_degree
        ext_count = len(extended)
        active_index = {q: i for i, q in enumerate(active)}
        # Stream gather through the residency handles: stays device-side
        # when every stream is resident on the same backend.
        stacked = stack_arrays([p.buffer for p in polynomials])  # (B, L, N)

        # Dcomp + ModUp: one batched Conv per decomposition group.
        raised_groups = []
        for group in key_level.group_moduli:
            rows = np.asarray([active_index[q] for q in group], dtype=np.int64)
            modup = self.key_switcher._modup_for(group, extended)
            counter.record_batch(KernelName.CONV, batch,
                                 ext_count - len(group))
            raised_groups.append(
                modup.apply_batch(contiguous(stacked[:, rows])))
        dnum = len(raised_groups)
        raised = stack_arrays(raised_groups, axis=1)    # (B, dnum, ext, N)

        # NTT: all B * dnum extended slices in one engine call.
        evals = context.planner.forward_ops(
            ring_degree, extended,
            raised.reshape(batch * dnum, ext_count, ring_degree))
        counter.record_batch(KernelName.NTT, batch * dnum, ext_count)

        # Inner product: one fused Hada-Mult launch per key component,
        # then an exact modular fold of the dnum axis.
        ext_column = np.asarray(extended, dtype=np.int64)[:, None]
        tiled_column = np.tile(ext_column, (batch * dnum, 1))
        flat_evals = evals.reshape(batch * dnum * ext_count, ring_degree)
        accumulators = []
        for key_stack in self._key_stacks(key_level):   # (b_j, a_j) pairs
            products = mat_mod_mul(
                flat_evals, np.tile(key_stack, (batch, 1)), tiled_column)
            counter.record_batch(KernelName.HADAMARD, batch * dnum, ext_count)
            accumulators.append(self._fold_groups(
                products.reshape(batch, dnum, ext_count, ring_degree),
                ext_column))
            counter.record_batch(KernelName.ELE_ADD, batch * dnum, ext_count)

        # INTT + ModDown: both components of every stream at once.
        coeff = context.planner.inverse_ops(
            ring_degree, extended, concatenate_arrays(accumulators))
        counter.record_batch(KernelName.INTT, 2 * batch, ext_count)
        moddown = self.key_switcher._moddown_for(active)
        counter.record_batch(KernelName.CONV, batch, 2 * len(active))
        lowered = moddown.apply_batch(coeff)            # (2B, L, N)
        return [
            (RnsPolynomial(ring_degree, active, lowered[j]),
             RnsPolynomial(ring_degree, active, lowered[batch + j]))
            for j in range(batch)
        ]

    # ------------------------------------------------------------------
    #: Most-recently-used switch-key levels whose stacked images are kept.
    KEY_STACK_CACHE_SIZE = 16

    def _key_stacks(self, key_level) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(dnum * L', N)`` stacks of a level's (b, a) key pairs.

        The switch-key material is constant per level, so the per-group
        residue matrices are stacked once and reused by every fused
        inner product instead of being rebuilt per call.  The per-call
        ``np.tile`` across the batch stays: it is transient, small next
        to the transform GEMMs, and keeps the funnel operands 2-D (a
        broadcast view would tie this code to per-backend chunking
        semantics).
        """
        cached = self._key_stack_cache.get(id(key_level))
        if cached is None:
            stacks = tuple(
                np.concatenate(
                    [pair[component].residues for pair in key_level.pairs])
                for component in (0, 1)
            )
            cached = (key_level, stacks)
            self._key_stack_cache[id(key_level)] = cached
            if len(self._key_stack_cache) > self.KEY_STACK_CACHE_SIZE:
                self._key_stack_cache.popitem(last=False)
        else:
            self._key_stack_cache.move_to_end(id(key_level))
        return cached[1]

    @staticmethod
    def _fold_groups(products: np.ndarray, ext_column: np.ndarray) -> np.ndarray:
        """Sum a ``(B, dnum, ext, N)`` product tensor over the dnum axis.

        Each entry is a reduced residue below its row's prime, so the plain
        int64 sum is exact whenever ``dnum * max(q)`` fits in int64 (always
        for word-sized primes); the fold then reduces once per row, which
        equals the sequential chain of Ele-Add launches bit for bit.  The
        pairwise funnel fallback covers pathological moduli.  A
        float-resident product tensor folds entirely in float64 (the sum
        of ``dnum`` canonical residues stays far inside the mantissa), so
        the inner product materialises no int64 image; other residencies
        stage on host (``as_ndarray`` — a counted crossing for
        device-resident products).
        """
        if (is_buffer(products) and products.host_image is None
                and products.resident_backend is None):
            cache = products.float_cache()
            chain = get_barrett_chain(ext_column)
            if cache is not None and chain.fits(
                    products.shape[1] * int(cache.max_value)):
                summed = cache.full().sum(axis=1)
                folded = chain.canonical_reduce(summed, axis=1)
                return DeviceBuffer.from_float(
                    FloatResidues(folded, chain.qmax - 1))
        products = as_ndarray(products)
        batch, dnum, ext_count, ring_degree = products.shape
        tiled = np.tile(ext_column, (batch, 1))
        if dnum * int(ext_column.max()) < (1 << 63):
            summed = products.sum(axis=1, dtype=np.int64)
            return mat_mod_reduce(
                summed.reshape(batch * ext_count, ring_degree), tiled
            ).reshape(batch, ext_count, ring_degree)
        accumulator = products[:, 0].reshape(batch * ext_count, ring_degree)
        for j in range(1, dnum):
            accumulator = mat_mod_add(
                accumulator,
                products[:, j].reshape(batch * ext_count, ring_degree), tiled)
        return accumulator.reshape(batch, ext_count, ring_degree)
