"""Decryption and decoding.

``Decryptor.decrypt`` computes ``c0 + c1*s`` over the ciphertext's active
basis and returns a coefficient-domain plaintext; ``decrypt_to_slots``
additionally CRT-recombines the residues into centred integers and decodes
them back into complex slot values.
"""

from __future__ import annotations

import numpy as np

from .ciphertext import Ciphertext, Plaintext
from .context import CkksContext
from .keys import SecretKey

__all__ = ["Decryptor"]


class Decryptor:
    """Decrypts ciphertexts with the secret key."""

    def __init__(self, context: CkksContext, secret_key: SecretKey) -> None:
        self.context = context
        self.secret_key = secret_key

    def decrypt(self, ciphertext: Ciphertext) -> Plaintext:
        """Return the underlying plaintext polynomial ``c0 + c1*s``."""
        planner = self.context.planner
        moduli = ciphertext.moduli
        secret_eval = self.secret_key.as_polynomial(moduli).to_evaluation(planner)
        c1_eval = ciphertext.c1.to_evaluation(planner)
        product = c1_eval.hadamard(secret_eval).to_coefficient(planner)
        message = ciphertext.c0.add(product)
        return Plaintext(polynomial=message, scale=ciphertext.scale,
                         level=ciphertext.level)

    def decrypt_to_slots(self, ciphertext: Ciphertext) -> np.ndarray:
        """Decrypt and decode into a complex slot vector."""
        plaintext = self.decrypt(ciphertext)
        coefficients = plaintext.polynomial.to_integers(centered=True)
        return self.context.encoder.decode(coefficients, plaintext.scale)

    def decrypt_real(self, ciphertext: Ciphertext) -> np.ndarray:
        """Decrypt and return the real parts of the slots."""
        return self.decrypt_to_slots(ciphertext).real

    def invariant_noise_budget_bits(self, ciphertext: Ciphertext,
                                    expected_slots: np.ndarray = None) -> float:
        """A crude noise estimate: ``log2(Q_level) - log2(max |coefficient|)``.

        Not a formal noise bound, but useful in tests and examples to
        observe the level/noise budget shrinking as operations are applied.
        """
        import math

        plaintext = self.decrypt(ciphertext)
        coefficients = plaintext.polynomial.to_integers(centered=True)
        magnitude = max(abs(int(c)) for c in coefficients) or 1
        modulus = self.context.modulus_at_level(ciphertext.level)
        return float(math.log2(modulus) - math.log2(magnitude))
