"""Key generation: secret/public keys and generalized key-switching keys.

Switch keys follow the Han–Ki generalized key switching used by the paper:
the ciphertext chain at level ``l`` is split into ``dnum`` groups; for each
group ``j`` the key holds an encryption of ``P * g_j * s_from`` under ``s``
over the extended basis ``C_l ∪ P``, where ``g_j`` is the CRT
reconstruction factor of the group (``g_j ≡ 1`` mod the group's primes and
``≡ 0`` mod the other active primes).  Keys are generated for every level
at once so the evaluator never needs the secret key.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..kernels.automorphism import apply_automorphism_coeff, galois_element_for_rotation
from ..numtheory.crt import CrtContext
from ..numtheory.modular import mod_inverse
from ..rns.poly import PolyDomain, RnsPolynomial
from .context import CkksContext
from .keys import PublicKey, RotationKeySet, SecretKey, SwitchKey, SwitchKeyLevel

__all__ = ["KeyGenerator"]


class KeyGenerator:
    """Generates all key material for a :class:`CkksContext`."""

    def __init__(self, context: CkksContext) -> None:
        self.context = context
        self._rng = context.rng

    # ------------------------------------------------------------------
    # Secret / public keys
    # ------------------------------------------------------------------
    def generate_secret_key(self) -> SecretKey:
        """Sample a (sparse) ternary secret key."""
        parameters = self.context.parameters
        n = parameters.ring_degree
        weight = parameters.secret_hamming_weight
        if weight is None:
            coefficients = self._rng.integers(-1, 2, n)
        else:
            weight = min(weight, n)
            coefficients = np.zeros(n, dtype=np.int64)
            positions = self._rng.choice(n, size=weight, replace=False)
            coefficients[positions] = self._rng.choice([-1, 1], size=weight)
        return SecretKey(coefficients)

    def generate_public_key(self, secret_key: SecretKey) -> PublicKey:
        """Encryption key ``(b, a) = (-a*s + e, a)`` over the full chain."""
        moduli = self.context.moduli_at_level(self.context.max_level)
        planner = self.context.planner
        n = self.context.ring_degree
        a = RnsPolynomial.random_uniform(n, moduli, self._rng,
                                         domain=PolyDomain.EVALUATION)
        s_eval = secret_key.as_polynomial(moduli).to_evaluation(planner)
        error = RnsPolynomial.random_gaussian(
            n, moduli, self._rng, stddev=self.context.parameters.error_std
        ).to_evaluation(planner)
        b = a.hadamard(s_eval).negate().add(error)
        return PublicKey(b=b, a=a)

    # ------------------------------------------------------------------
    # Switch keys
    # ------------------------------------------------------------------
    def generate_relinearization_key(self, secret_key: SecretKey) -> SwitchKey:
        """Switch key for ``s^2 -> s`` (used by HMULT)."""
        s_squared = self._square_secret(secret_key)
        return self.create_switch_key(s_squared, secret_key, description="relinearization")

    def generate_rotation_key(self, secret_key: SecretKey, steps: int) -> SwitchKey:
        """Switch key for ``s(X^g) -> s`` with ``g = 5^steps`` (HROTATE)."""
        galois_element = galois_element_for_rotation(steps, self.context.ring_degree)
        rotated = self._automorphism_secret(secret_key, galois_element)
        return self.create_switch_key(rotated, secret_key,
                                      description="rotation(%d)" % steps)

    def generate_rotation_keys(self, secret_key: SecretKey,
                               steps: Iterable[int]) -> RotationKeySet:
        """Generate rotation keys for several step counts plus conjugation."""
        key_set = RotationKeySet()
        for step in steps:
            key_set.add(int(step), self.generate_rotation_key(secret_key, int(step)))
        key_set.conjugation_key = self.generate_conjugation_key(secret_key)
        return key_set

    def generate_conjugation_key(self, secret_key: SecretKey) -> SwitchKey:
        """Switch key for ``s(X^(2N-1)) -> s`` (complex conjugation)."""
        galois_element = 2 * self.context.ring_degree - 1
        conjugated = self._automorphism_secret(secret_key, galois_element)
        return self.create_switch_key(conjugated, secret_key, description="conjugation")

    def ensure_rotation_keys(self, secret_key: SecretKey,
                             key_set: RotationKeySet,
                             steps: Iterable[int]) -> None:
        """Lazily add any missing rotation keys for ``steps`` to ``key_set``.

        Steps that are multiples of the slot count rotate by zero and need
        no key.  Shared by the facade and the serving layer's per-tenant
        key registry, so lazy generation has one definition.
        """
        slot_count = self.context.slot_count
        missing = [step for step in steps
                   if step % slot_count and step not in key_set.keys]
        for step in missing:
            key_set.add(step, self.generate_rotation_key(secret_key, step))

    # ------------------------------------------------------------------
    def create_switch_key(self, source_key_mod: "SecretLike", secret_key: SecretKey,
                          *, description: str = "switch") -> SwitchKey:
        """Create a switch key re-encrypting ``source`` under ``secret_key``.

        ``source_key_mod`` is a callable mapping a prime basis to the RNS
        polynomial of the source secret (this lets ``s^2`` be computed per
        basis without ever leaving RNS).
        """
        switch_key = SwitchKey(description=description)
        for level in range(self.context.max_level + 1):
            switch_key.levels[level] = self._switch_key_for_level(
                source_key_mod, secret_key, level
            )
        return switch_key

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _switch_key_for_level(self, source_key_mod, secret_key: SecretKey,
                              level: int) -> SwitchKeyLevel:
        context = self.context
        planner = context.planner
        n = context.ring_degree
        active = context.moduli_at_level(level)
        extended = context.extended_moduli_at_level(level)
        special_product = context.basis.special_product
        groups = context.decomposition_groups(level)

        active_product = 1
        for prime in active:
            active_product *= prime

        s_eval = secret_key.as_polynomial(extended).to_evaluation(planner)
        source_eval = source_key_mod(extended).to_evaluation(planner)

        pairs: List[Tuple[RnsPolynomial, RnsPolynomial]] = []
        group_list: List[Tuple[int, ...]] = []
        for group in groups:
            group_product = 1
            for prime in group:
                group_product *= prime
            complement = active_product // group_product
            # t = complement^{-1} mod each group prime, CRT-composed.
            group_crt = CrtContext(group)
            inverses = [mod_inverse(complement % q, q) for q in group]
            t_value = group_crt.compose(inverses)
            factors = []
            for prime in extended:
                factor = (special_product % prime) * (complement % prime) % prime
                factor = factor * (t_value % prime) % prime
                factors.append(factor)

            a_poly = RnsPolynomial.random_uniform(n, extended, self._rng,
                                                  domain=PolyDomain.EVALUATION)
            error = RnsPolynomial.random_gaussian(
                n, extended, self._rng, stddev=context.parameters.error_std
            ).to_evaluation(planner)
            payload = source_eval.scalar_multiply_per_limb(factors)
            b_poly = a_poly.hadamard(s_eval).negate().add(error).add(payload)
            pairs.append((b_poly, a_poly))
            group_list.append(tuple(group))
        return SwitchKeyLevel(level=level, group_moduli=group_list, pairs=pairs)

    def _square_secret(self, secret_key: SecretKey):
        """Return a callable producing ``s^2`` in any requested basis."""
        context = self.context

        def build(moduli: Sequence[int]) -> RnsPolynomial:
            planner = context.planner
            s_eval = secret_key.as_polynomial(moduli).to_evaluation(planner)
            return s_eval.hadamard(s_eval).to_coefficient(planner)

        return build

    def _automorphism_secret(self, secret_key: SecretKey, galois_element: int):
        """Return a callable producing ``s(X^g)`` in any requested basis."""
        coefficients = secret_key.coefficients

        def build(moduli: Sequence[int]) -> RnsPolynomial:
            rows = []
            for q in moduli:
                reduced = np.asarray([c % q for c in coefficients], dtype=np.int64)
                rows.append(apply_automorphism_coeff(reduced, galois_element, q))
            return RnsPolynomial(len(coefficients), moduli, np.stack(rows),
                                 PolyDomain.COEFFICIENT)

        return build
