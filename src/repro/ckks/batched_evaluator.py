"""Batched CKKS evaluation: independent operation streams as fused launches.

The paper's central throughput claim (Section IV-D, Figure 9) is that *B*
independent ciphertext operations of the same shape can execute as single
``(L, B, N)`` tensor launches instead of ``B`` separate kernel sequences.
:class:`BatchedEvaluator` is that execution model for the functional CKKS
stack: it takes *streams* of independent HADD / HMULT / CMULT / RESCALE
operands, groups them by their active prime chain, and executes each group
with

* **one** ``forward_ops``/``inverse_ops`` engine call per transform step —
  a single batched backend GEMM covering every stream and every limb — and
* **one** backend-funnel mat-mod launch per element-wise step over the
  fused ``(B*L, N)`` residue matrix (tiled per-limb moduli column).

Per-stream bookkeeping (scale tracking, level alignment, domain tags) is
preserved exactly: results are bit-identical to looping the sequential
:class:`~repro.ckks.evaluator.Evaluator` over the streams, and the kernel
counters record the same invocations (fusion is invisible to the
instrumentation, via :meth:`~repro.kernels.base.KernelCounter.record_batch`).

One deliberate scope note remains: streams whose operands are not all in
the coefficient domain take the sequential path for that stream (the fused
NTT needs a uniform domain).  The HMULT key switch and the rotation /
conjugation paths are fully B-fused through
:class:`~repro.ckks.batched_keyswitch.BatchedKeySwitcher`: the dnum
decomposition of every stream stacks into one ``(B, dnum, L, N)`` tensor
and the whole batch mods up, transforms, inner-products and mods down in
single launches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..backend.residency import (
    as_ndarray,
    concatenate_arrays,
    contiguous,
    stack_arrays,
)
from ..kernels.automorphism import (
    apply_automorphism_coeff,
    galois_element_for_rotation,
)
from ..kernels.base import KernelName
from ..numtheory.modular import (
    mat_mod_add,
    mat_mod_mul,
    mat_mod_reduce,
    mat_mod_sub,
)
from ..rns.poly import PolyDomain, RnsPolynomial
from .batched_keyswitch import BatchedKeySwitcher
from .ciphertext import Ciphertext, Plaintext
from .context import CkksContext
from .evaluator import Evaluator
from .keys import RotationKeySet, SwitchKey

__all__ = ["BatchedEvaluator", "stream_signature"]


def stream_signature(ciphertext: Ciphertext) -> Tuple:
    """The compatibility key under which independent streams fuse.

    Streams sharing this tuple — active prime chain, level, scale and the
    per-component polynomial domains — can execute as one ``(B, L, N)``
    fused launch with no per-stream special-casing: the batched evaluator
    groups by the chain internally and checks scale/domain per pair, and
    the serving layer's request coalescer uses this same key up front so
    every chunk it hands over is maximally fusable.
    """
    return (ciphertext.moduli, ciphertext.level, ciphertext.scale,
            ciphertext.c0.domain, ciphertext.c1.domain)


class BatchedEvaluator:
    """Executes independent streams of CKKS operations as fused batches."""

    def __init__(self, context: CkksContext, *,
                 evaluator: Optional[Evaluator] = None) -> None:
        self.context = context
        #: Sequential evaluator: shared bookkeeping helpers (align, scale
        #: checks) and the fallback for non-fusable streams.
        self.evaluator = evaluator if evaluator is not None else Evaluator(context)
        #: B-fused key switching; shares the sequential switcher's
        #: ModUp/ModDown caches so no duplicate precomputation exists.
        self.key_switcher = BatchedKeySwitcher(
            context, key_switcher=self.evaluator.key_switcher)

    # ------------------------------------------------------------------
    # HADD: B independent additions, one Ele-Add launch per component
    # ------------------------------------------------------------------
    def add(self, lhs_streams: Sequence[Ciphertext],
            rhs_streams: Sequence[Ciphertext]) -> List[Ciphertext]:
        """Batched HADD: element-wise addition of ``B`` independent pairs."""
        pairs = []
        for lhs, rhs in self._zipped(lhs_streams, rhs_streams):
            lhs, rhs = self.evaluator.align(lhs, rhs)
            self.evaluator._check_scales(lhs.scale, rhs.scale)
            self._check_pair_domains(lhs, rhs)
            pairs.append((lhs, rhs))

        results: List[Optional[Ciphertext]] = [None] * len(pairs)
        for moduli, indices in self._grouped(p[0].moduli for p in pairs).items():
            batch, limbs = len(indices), len(moduli)
            tiled = self._tiled_moduli(moduli, batch)
            sums = []
            for component in ("c0", "c1"):
                left = self._stack([getattr(pairs[i][0], component) for i in indices])
                right = self._stack([getattr(pairs[i][1], component) for i in indices])
                fused = mat_mod_add(self._fuse(left), self._fuse(right), tiled)
                self._record(KernelName.ELE_ADD, batch, limbs)
                sums.append(fused.reshape(left.shape))
            for j, i in enumerate(indices):
                lhs = pairs[i][0]
                results[i] = Ciphertext(
                    c0=self._poly(moduli, sums[0][j], lhs.c0.domain),
                    c1=self._poly(moduli, sums[1][j], lhs.c1.domain),
                    scale=lhs.scale, level=lhs.level,
                )
        return results

    def negate(self, ciphertexts: Sequence[Ciphertext]) -> List[Ciphertext]:
        """Negate every stream.

        Negation is a pure host-side modular map with no kernel launches
        (the sequential path records nothing either), so there is nothing
        to fuse; the per-stream map keeps the counters and bits identical
        by construction.
        """
        return [self.evaluator.negate(ciphertext) for ciphertext in ciphertexts]

    def add_plain(self, ciphertexts: Sequence[Ciphertext],
                  plaintexts: Sequence[Plaintext]) -> List[Ciphertext]:
        """Batched plaintext addition: one fused Ele-Add over the c0 stack."""
        streams = list(self._zipped(ciphertexts, plaintexts))
        results: List[Optional[Ciphertext]] = [None] * len(streams)
        fusable: List[Tuple[int, Ciphertext, Plaintext, RnsPolynomial]] = []
        for i, (ciphertext, plaintext) in enumerate(streams):
            self.evaluator._check_scales(ciphertext.scale, plaintext.scale)
            plain_poly = self.evaluator._plain_at_level(plaintext,
                                                        ciphertext.level)
            if ciphertext.c0.domain == plain_poly.domain:
                fusable.append((i, ciphertext, plaintext, plain_poly))
            else:
                results[i] = self.evaluator.add_plain(ciphertext, plaintext)

        for moduli, indices in self._grouped(
                entry[1].moduli for entry in fusable).items():
            entries = [fusable[k] for k in indices]
            batch, limbs = len(entries), len(moduli)
            tiled = self._tiled_moduli(moduli, batch)
            left = self._stack([entry[1].c0 for entry in entries])
            right = self._stack([entry[3] for entry in entries])
            fused = mat_mod_add(self._fuse(left), self._fuse(right), tiled)
            self._record(KernelName.ELE_ADD, batch, limbs)
            sums = fused.reshape(left.shape)
            for j, (i, ciphertext, _, _) in enumerate(entries):
                results[i] = Ciphertext(
                    c0=self._poly(moduli, sums[j], ciphertext.c0.domain),
                    c1=ciphertext.c1.copy(),
                    scale=ciphertext.scale, level=ciphertext.level,
                )
        return results

    # ------------------------------------------------------------------
    # CMULT: B plaintext multiplications, one NTT/Hadamard/INTT step each
    # ------------------------------------------------------------------
    def multiply_plain(self, ciphertexts: Sequence[Ciphertext],
                       plaintexts: Sequence[Plaintext]) -> List[Ciphertext]:
        """Batched CMULT: multiply each stream by its encoded plaintext."""
        streams = list(self._zipped(ciphertexts, plaintexts))
        results: List[Optional[Ciphertext]] = [None] * len(streams)
        fusable: List[Tuple[int, Ciphertext, Plaintext, RnsPolynomial]] = []
        for i, (ciphertext, plaintext) in enumerate(streams):
            plain_poly = self.evaluator._plain_at_level(plaintext, ciphertext.level)
            if self._all_coefficient(ciphertext.c0, ciphertext.c1, plain_poly):
                fusable.append((i, ciphertext, plaintext, plain_poly))
            else:
                # Mixed-domain stream: the sequential path skips transforms
                # per domain tag, which a uniform fused launch cannot.
                results[i] = self.evaluator.multiply_plain(ciphertext, plaintext)

        for moduli, indices in self._grouped(
                entry[1].moduli for entry in fusable).items():
            entries = [fusable[k] for k in indices]
            batch, limbs = len(entries), len(moduli)
            tiled = self._tiled_moduli(moduli, batch)
            stacks = concatenate_arrays([
                self._stack([entry[1].c0 for entry in entries]),
                self._stack([entry[1].c1 for entry in entries]),
                self._stack([entry[3] for entry in entries]),
            ])
            evals = self.context.planner.forward_ops(
                self.context.ring_degree, moduli, stacks)
            self._record(KernelName.NTT, 3 * batch, limbs)
            c0_eval, c1_eval = evals[:batch], evals[batch:2 * batch]
            plain_eval = evals[2 * batch:]
            d0 = self._fused_mul(c0_eval, plain_eval, tiled)
            d1 = self._fused_mul(c1_eval, plain_eval, tiled)
            self._record(KernelName.HADAMARD, 2 * batch, limbs)
            coeff = self.context.planner.inverse_ops(
                self.context.ring_degree, moduli, concatenate_arrays([d0, d1]))
            self._record(KernelName.INTT, 2 * batch, limbs)
            for j, (i, ciphertext, plaintext, _) in enumerate(entries):
                results[i] = Ciphertext(
                    c0=self._poly(moduli, coeff[j]),
                    c1=self._poly(moduli, coeff[batch + j]),
                    scale=ciphertext.scale * plaintext.scale,
                    level=ciphertext.level,
                )
        return results

    # ------------------------------------------------------------------
    # HMULT: B ciphertext multiplications with relinearization
    # ------------------------------------------------------------------
    def multiply(self, lhs_streams: Sequence[Ciphertext],
                 rhs_streams: Sequence[Ciphertext],
                 relinearization_key: SwitchKey) -> List[Ciphertext]:
        """Batched HMULT: fused transforms, per-stream key switching."""
        streams = list(self._zipped(lhs_streams, rhs_streams))
        results: List[Optional[Ciphertext]] = [None] * len(streams)
        fusable: List[Tuple[int, Ciphertext, Ciphertext]] = []
        for i, (lhs, rhs) in enumerate(streams):
            aligned_l, aligned_r = self.evaluator.align(lhs, rhs)
            if self._all_coefficient(aligned_l.c0, aligned_l.c1,
                                     aligned_r.c0, aligned_r.c1):
                fusable.append((i, aligned_l, aligned_r))
            else:
                results[i] = self.evaluator.multiply(lhs, rhs, relinearization_key)

        for moduli, indices in self._grouped(
                entry[1].moduli for entry in fusable).items():
            entries = [fusable[k] for k in indices]
            batch, limbs = len(entries), len(moduli)
            level = entries[0][1].level
            tiled = self._tiled_moduli(moduli, batch)
            stacks = concatenate_arrays([
                self._stack([lhs.c0 for _, lhs, _ in entries]),
                self._stack([lhs.c1 for _, lhs, _ in entries]),
                self._stack([rhs.c0 for _, _, rhs in entries]),
                self._stack([rhs.c1 for _, _, rhs in entries]),
            ])
            evals = self.context.planner.forward_ops(
                self.context.ring_degree, moduli, stacks)
            self._record(KernelName.NTT, 4 * batch, limbs)
            a0, a1 = evals[:batch], evals[batch:2 * batch]
            b0, b1 = evals[2 * batch:3 * batch], evals[3 * batch:]

            d0 = self._fused_mul(a0, b0, tiled)
            cross0 = self._fused_mul(a0, b1, tiled)
            cross1 = self._fused_mul(a1, b0, tiled)
            d2 = self._fused_mul(a1, b1, tiled)
            self._record(KernelName.HADAMARD, 4 * batch, limbs)
            d1 = mat_mod_add(self._fuse(cross0), self._fuse(cross1),
                             tiled).reshape(d0.shape)
            self._record(KernelName.ELE_ADD, batch, limbs)

            coeff = self.context.planner.inverse_ops(
                self.context.ring_degree, moduli,
                concatenate_arrays([d0, d1, d2]))
            self._record(KernelName.INTT, 3 * batch, limbs)
            # Generalized key switching, fused across the B axis: the dnum
            # decomposition of every stream stacks into one (B, dnum, L, N)
            # tensor and runs as batched ModUp / NTT / inner-product /
            # ModDown launches.
            switched = self.key_switcher.switch_many(
                [self._poly(moduli, coeff[2 * batch + j]) for j in range(batch)],
                relinearization_key, level)
            outputs = []
            for slot, component in enumerate(("c0", "c1")):
                own = coeff[slot * batch:(slot + 1) * batch]
                key_part = self._stack([pair[slot] for pair in switched])
                fused = mat_mod_add(self._fuse(own), self._fuse(key_part), tiled)
                self._record(KernelName.ELE_ADD, batch, limbs)
                outputs.append(fused.reshape(own.shape))
            for j, (i, lhs, rhs) in enumerate(entries):
                results[i] = Ciphertext(
                    c0=self._poly(moduli, outputs[0][j]),
                    c1=self._poly(moduli, outputs[1][j]),
                    scale=lhs.scale * rhs.scale, level=level,
                )
        return results

    def multiply_and_rescale(self, lhs_streams: Sequence[Ciphertext],
                             rhs_streams: Sequence[Ciphertext],
                             relinearization_key: SwitchKey) -> List[Ciphertext]:
        """Batched HMULT followed by batched RESCALE."""
        return self.rescale(
            self.multiply(lhs_streams, rhs_streams, relinearization_key))

    # ------------------------------------------------------------------
    # RESCALE: B level drops, three fused launches per group
    # ------------------------------------------------------------------
    def rescale(self, ciphertexts: Sequence[Ciphertext]) -> List[Ciphertext]:
        """Batched RESCALE: drop the last prime of every stream at once."""
        ciphertexts = list(ciphertexts)
        for ciphertext in ciphertexts:
            if ciphertext.level == 0:
                raise ValueError("cannot rescale a level-0 ciphertext")
        results: List[Optional[Ciphertext]] = [None] * len(ciphertexts)
        for moduli, indices in self._grouped(
                ct.moduli for ct in ciphertexts).items():
            batch, limbs = len(indices), len(moduli)
            surviving = moduli[:-1]
            last_prime = moduli[-1]
            tiled = self._tiled_moduli(surviving, 2 * batch)
            inverse_rows = np.tile(
                self.context.rescale_inverses(moduli), (2 * batch, 1))
            polys = ([ciphertexts[i].c0 for i in indices]
                     + [ciphertexts[i].c1 for i in indices])
            stacks = self._stack(polys)                       # (2B, L, N)
            head = contiguous(stacks[:, :-1, :])              # (2B, L-1, N)
            # Last limb repeated per surviving limb — a resident-image row
            # gather (bit-identical to the historical broadcast view).
            last = stacks[:, np.full(limbs - 1, limbs - 1, dtype=np.int64), :]
            # (c_i - c_last) * q_last^{-1} mod q_i, all streams and limbs
            # in three funnel launches over the (2B*(L-1), N) fused matrix.
            reduced_last = mat_mod_reduce(last.reshape(-1, head.shape[2]), tiled)
            diff = mat_mod_sub(self._fuse(head), reduced_last, tiled)
            scaled = mat_mod_mul(diff, inverse_rows, tiled).reshape(head.shape)
            self._record(KernelName.ELE_SUB, 2 * batch, limbs - 1)
            for j, i in enumerate(indices):
                ciphertext = ciphertexts[i]
                results[i] = Ciphertext(
                    c0=self._poly(surviving, scaled[j], ciphertext.c0.domain),
                    c1=self._poly(surviving, scaled[batch + j], ciphertext.c1.domain),
                    scale=ciphertext.scale / last_prime,
                    level=ciphertext.level - 1,
                )
        return results

    # ------------------------------------------------------------------
    # HROTATE / HCONJ: B automorphisms plus one fused key switch
    # ------------------------------------------------------------------
    def rotate(self, ciphertexts: Sequence[Ciphertext], steps: int,
               rotation_keys: RotationKeySet) -> List[Ciphertext]:
        """Batched HROTATE: rotate every stream by the same ``steps``.

        The automorphism is one gather over the stacked ``(2B, L, N)``
        residues and the key switch runs B-fused; streams are grouped by
        their active prime chain exactly like the other batched paths.
        """
        ciphertexts = list(ciphertexts)
        if not ciphertexts:
            # Match the sequential loop over zero streams, which never
            # resolves a key: empty in, empty out.
            return []
        steps %= self.context.slot_count
        if steps == 0:
            return [ciphertext.copy() for ciphertext in ciphertexts]
        galois_element = galois_element_for_rotation(
            steps, self.context.ring_degree)
        switch_key = rotation_keys.for_steps(steps)
        return self._apply_galois_many(
            ciphertexts, galois_element, switch_key, KernelName.FROBENIUS,
            lambda ct: self.evaluator.rotate(ct, steps, rotation_keys))

    def conjugate(self, ciphertexts: Sequence[Ciphertext],
                  rotation_keys: RotationKeySet) -> List[Ciphertext]:
        """Batched HCONJ: conjugate the slot vector of every stream."""
        ciphertexts = list(ciphertexts)
        if not ciphertexts:
            return []
        if rotation_keys.conjugation_key is None:
            raise ValueError("rotation key set has no conjugation key")
        galois_element = 2 * self.context.ring_degree - 1
        return self._apply_galois_many(
            ciphertexts, galois_element, rotation_keys.conjugation_key,
            KernelName.CONJUGATE,
            lambda ct: self.evaluator.conjugate(ct, rotation_keys))

    def _apply_galois_many(self, ciphertexts: Sequence[Ciphertext],
                           galois_element: int, switch_key: SwitchKey,
                           kernel: str, sequential) -> List[Ciphertext]:
        results: List[Optional[Ciphertext]] = [None] * len(ciphertexts)
        fusable: List[Tuple[int, Ciphertext]] = []
        for i, ciphertext in enumerate(ciphertexts):
            if self._all_coefficient(ciphertext.c0, ciphertext.c1):
                fusable.append((i, ciphertext))
            else:
                results[i] = sequential(ciphertext)

        for moduli, indices in self._grouped(
                entry[1].moduli for entry in fusable).items():
            entries = [fusable[k] for k in indices]
            batch, limbs = len(entries), len(moduli)
            level = entries[0][1].level
            tiled = self._tiled_moduli(moduli, batch)
            stacks = concatenate_arrays([
                self._stack([ct.c0 for _, ct in entries]),
                self._stack([ct.c1 for _, ct in entries]),
            ])                                            # (2B, L, N)
            column = np.asarray(moduli, dtype=np.int64)[:, None]
            # The automorphism is a host-side index gather (a counted
            # staging point for device-resident streams).
            rotated = apply_automorphism_coeff(as_ndarray(stacks),
                                               galois_element, column)
            self._record(kernel, 2 * batch, limbs)
            switched = self.key_switcher.switch_many(
                [self._poly(moduli, rotated[batch + j]) for j in range(batch)],
                switch_key, level)
            key_part = self._stack([pair[0] for pair in switched])
            fused = mat_mod_add(self._fuse(rotated[:batch]),
                                self._fuse(key_part), tiled)
            self._record(KernelName.ELE_ADD, batch, limbs)
            summed = fused.reshape(key_part.shape)
            for j, (i, ciphertext) in enumerate(entries):
                results[i] = Ciphertext(
                    c0=self._poly(moduli, summed[j]),
                    c1=switched[j][1],
                    scale=ciphertext.scale, level=ciphertext.level,
                )
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _zipped(self, lhs: Sequence, rhs: Sequence):
        lhs, rhs = list(lhs), list(rhs)
        if len(lhs) != len(rhs):
            raise ValueError(
                "stream lists have different lengths (%d vs %d)"
                % (len(lhs), len(rhs))
            )
        return zip(lhs, rhs)

    @staticmethod
    def _grouped(moduli_iter) -> Dict[Tuple[int, ...], List[int]]:
        """Stream indices grouped by active prime chain, insertion-ordered."""
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for index, moduli in enumerate(moduli_iter):
            groups.setdefault(tuple(moduli), []).append(index)
        return groups

    @staticmethod
    def _stack(polys: Sequence[RnsPolynomial]):
        """Stack per-stream residency handles into a ``(B, L, N)`` batch.

        Returns a :class:`~repro.backend.residency.DeviceBuffer`: the
        gather stays on the device when every stream is resident there,
        and the fused launches downstream thread the handle end-to-end.
        """
        return stack_arrays([poly.buffer for poly in polys])

    @staticmethod
    def _fuse(stack):
        """Reshape ``(B, L, N)`` to the ``(B*L, N)`` fused funnel matrix."""
        return stack.reshape(-1, stack.shape[2])

    @staticmethod
    def _tiled_moduli(moduli: Tuple[int, ...], count: int) -> np.ndarray:
        """The per-limb chain repeated per operation: ``(count*L,)`` rows."""
        return np.tile(np.asarray(moduli, dtype=np.int64), count)

    def _fused_mul(self, lhs: np.ndarray, rhs: np.ndarray,
                   tiled: np.ndarray) -> np.ndarray:
        """One Hada-Mult funnel launch over stacked ``(B, L, N)`` operands."""
        return mat_mod_mul(self._fuse(lhs), self._fuse(rhs), tiled).reshape(lhs.shape)

    def _poly(self, moduli: Tuple[int, ...], residues: np.ndarray,
              domain: str = PolyDomain.COEFFICIENT) -> RnsPolynomial:
        return RnsPolynomial(self.context.ring_degree, moduli, residues, domain)

    def _record(self, kernel: str, operations: int, limbs: int) -> None:
        self.context.kernels.counter.record_batch(kernel, operations, limbs)

    @staticmethod
    def _all_coefficient(*polys: RnsPolynomial) -> bool:
        return all(poly.domain == PolyDomain.COEFFICIENT for poly in polys)

    @staticmethod
    def _check_pair_domains(lhs: Ciphertext, rhs: Ciphertext) -> None:
        if (lhs.c0.domain != rhs.c0.domain or lhs.c1.domain != rhs.c1.domain):
            raise ValueError(
                "polynomial domains differ (%s/%s vs %s/%s)"
                % (lhs.c0.domain, lhs.c1.domain, rhs.c0.domain, rhs.c1.domain)
            )
