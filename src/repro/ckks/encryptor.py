"""Encryption and encoding helpers.

``Encryptor`` turns slot vectors into ciphertexts at the maximum level.
Both public-key encryption (``c = (v*b + e0 + m, v*a + e1)``) and
symmetric encryption (``c = (-a*s + e + m, a)``) are provided; the latter
produces slightly less noise and is handy in tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..rns.poly import PolyDomain, RnsPolynomial
from .ciphertext import Ciphertext, Plaintext
from .context import CkksContext
from .keys import PublicKey, SecretKey

__all__ = ["Encryptor"]


class Encryptor:
    """Encodes and encrypts slot vectors for one CKKS context."""

    def __init__(self, context: CkksContext,
                 public_key: Optional[PublicKey] = None,
                 secret_key: Optional[SecretKey] = None) -> None:
        if public_key is None and secret_key is None:
            raise ValueError("Encryptor needs a public key, a secret key, or both")
        self.context = context
        self.public_key = public_key
        self.secret_key = secret_key

    # ------------------------------------------------------------------
    def encode(self, values: Sequence[complex], *, scale: Optional[float] = None,
               level: Optional[int] = None) -> Plaintext:
        """Encode a slot vector into a :class:`Plaintext` at ``level``."""
        context = self.context
        level = context.max_level if level is None else level
        scale = context.scale if scale is None else scale
        coefficients = context.encoder.encode(values, scale)
        moduli = context.moduli_at_level(level)
        polynomial = RnsPolynomial.from_integers(coefficients, moduli,
                                                 context.ring_degree)
        return Plaintext(polynomial=polynomial, scale=scale, level=level)

    # ------------------------------------------------------------------
    def encrypt(self, values: Sequence[complex], *, scale: Optional[float] = None) -> Ciphertext:
        """Encode and encrypt a slot vector (public key if available)."""
        plaintext = self.encode(values, scale=scale)
        return self.encrypt_plaintext(plaintext)

    def encrypt_plaintext(self, plaintext: Plaintext) -> Ciphertext:
        """Encrypt an already-encoded plaintext."""
        if self.public_key is not None:
            return self._encrypt_public(plaintext)
        return self._encrypt_symmetric(plaintext)

    def encrypt_symmetric(self, values: Sequence[complex], *, scale: Optional[float] = None) -> Ciphertext:
        """Encode and encrypt under the secret key."""
        if self.secret_key is None:
            raise ValueError("no secret key available for symmetric encryption")
        plaintext = self.encode(values, scale=scale)
        return self._encrypt_symmetric(plaintext)

    # ------------------------------------------------------------------
    def _encrypt_public(self, plaintext: Plaintext) -> Ciphertext:
        context = self.context
        planner = context.planner
        rng = context.rng
        level = plaintext.level
        moduli = context.moduli_at_level(level)
        n = context.ring_degree
        stddev = context.parameters.error_std

        pk_b = self.public_key.b.restrict_to(moduli)
        pk_a = self.public_key.a.restrict_to(moduli)
        ephemeral = RnsPolynomial.random_ternary(n, moduli, rng).to_evaluation(planner)
        error0 = RnsPolynomial.random_gaussian(n, moduli, rng, stddev=stddev)
        error1 = RnsPolynomial.random_gaussian(n, moduli, rng, stddev=stddev)
        message_eval = plaintext.polynomial.to_evaluation(planner)

        c0 = ephemeral.hadamard(pk_b).add(error0.to_evaluation(planner)).add(message_eval)
        c1 = ephemeral.hadamard(pk_a).add(error1.to_evaluation(planner))
        return Ciphertext(
            c0=c0.to_coefficient(planner),
            c1=c1.to_coefficient(planner),
            scale=plaintext.scale,
            level=level,
        )

    def _encrypt_symmetric(self, plaintext: Plaintext) -> Ciphertext:
        if self.secret_key is None:
            raise ValueError("no secret key available for symmetric encryption")
        context = self.context
        planner = context.planner
        rng = context.rng
        level = plaintext.level
        moduli = context.moduli_at_level(level)
        n = context.ring_degree

        mask = RnsPolynomial.random_uniform(n, moduli, rng, domain=PolyDomain.EVALUATION)
        secret_eval = self.secret_key.as_polynomial(moduli).to_evaluation(planner)
        error = RnsPolynomial.random_gaussian(
            n, moduli, rng, stddev=context.parameters.error_std
        ).to_evaluation(planner)
        message_eval = plaintext.polynomial.to_evaluation(planner)
        c0 = mask.hadamard(secret_eval).negate().add(error).add(message_eval)
        return Ciphertext(
            c0=c0.to_coefficient(planner),
            c1=mask.to_coefficient(planner),
            scale=plaintext.scale,
            level=level,
        )
