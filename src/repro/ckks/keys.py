"""Key material: secret, public, relinearization, rotation and conjugation keys.

The secret key is kept as a signed ternary coefficient vector so it can be
reduced into any RNS basis on demand.  Switch keys (used for
relinearization, rotation and conjugation) follow the generalized
key-switching of the paper: for every level they hold one ``(b_j, a_j)``
pair per decomposition group, stored in the evaluation domain over the
extended basis ``C_l ∪ P``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..rns.poly import RnsPolynomial

__all__ = ["SecretKey", "PublicKey", "SwitchKey", "SwitchKeyLevel", "RotationKeySet"]


@dataclass
class SecretKey:
    """The ternary secret ``s`` as signed integer coefficients."""

    coefficients: np.ndarray

    def __post_init__(self) -> None:
        self.coefficients = np.asarray(self.coefficients, dtype=np.int64)

    @property
    def ring_degree(self) -> int:
        return int(self.coefficients.shape[0])

    def as_polynomial(self, moduli: Sequence[int]) -> RnsPolynomial:
        """Reduce the signed coefficients into the given RNS basis."""
        return RnsPolynomial.from_integers(self.coefficients, moduli, self.ring_degree)

    @property
    def hamming_weight(self) -> int:
        """Number of non-zero secret coefficients."""
        return int(np.count_nonzero(self.coefficients))


@dataclass
class PublicKey:
    """Encryption key pair ``(b, a)`` with ``b = -a*s + e`` (evaluation domain)."""

    b: RnsPolynomial
    a: RnsPolynomial

    @property
    def moduli(self):
        return self.b.moduli


@dataclass
class SwitchKeyLevel:
    """Key-switching material for one ciphertext level."""

    level: int
    group_moduli: List[Tuple[int, ...]]
    pairs: List[Tuple[RnsPolynomial, RnsPolynomial]]

    def __post_init__(self) -> None:
        if len(self.group_moduli) != len(self.pairs):
            raise ValueError("one (b, a) pair per decomposition group is required")

    @property
    def group_count(self) -> int:
        return len(self.pairs)


@dataclass
class SwitchKey:
    """A key switching key from some secret ``s_from`` to the canonical ``s``."""

    levels: Dict[int, SwitchKeyLevel] = field(default_factory=dict)
    description: str = "switch"

    def at_level(self, level: int) -> SwitchKeyLevel:
        try:
            return self.levels[level]
        except KeyError:
            raise KeyError(
                "no %s key material for level %d (available: %s)"
                % (self.description, level, sorted(self.levels))
            ) from None

    @property
    def max_level(self) -> int:
        return max(self.levels) if self.levels else -1


@dataclass
class RotationKeySet:
    """Rotation (and conjugation) keys indexed by the rotation step count."""

    keys: Dict[int, SwitchKey] = field(default_factory=dict)
    conjugation_key: Optional[SwitchKey] = None

    def add(self, steps: int, key: SwitchKey) -> None:
        self.keys[steps] = key

    def for_steps(self, steps: int) -> SwitchKey:
        try:
            return self.keys[steps]
        except KeyError:
            raise KeyError(
                "no rotation key for %d steps; generate it with "
                "KeyGenerator.generate_rotation_keys" % steps
            ) from None

    @property
    def available_steps(self) -> List[int]:
        return sorted(self.keys)
