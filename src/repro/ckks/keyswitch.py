"""Generalized key switching (paper Algorithm 1).

``KeySwitcher.switch`` takes a polynomial ``d`` that is currently paired
with a foreign secret (``s^2`` after multiplication, ``s(X^g)`` after an
automorphism) and returns a ciphertext pair ``(c0, c1)`` such that
``c0 + c1*s ≈ d * s_from``.  The sequence of kernels matches Algorithm 1:

* ``Dcomp`` — restrict ``d`` to each decomposition group;
* ``ModUp`` — extend each slice to the basis ``C_l ∪ P`` (Conv kernel);
* ``Inner-product`` — Hadamard-accumulate against the switch-key pairs
  (NTT + Hada-Mult + Ele-Add kernels);
* ``ModDown`` — divide by ``P`` and return to the ciphertext basis
  (INTT + Conv kernels).

Every step executes limb-batched: the NTT/INTT kernels are one batched
engine call per polynomial, the Hadamard/Ele-Add inner product is a single
2-D launch over the extended basis, and ModUp/ModDown run their Conv as a
row-moduli GEMM.  Only the loop over the ``dnum`` decomposition groups
remains at the Python level, matching the paper's launch structure.
"""

from __future__ import annotations

from typing import Tuple

from ..kernels import ops as kernel_ops
from ..kernels.base import KernelName
from ..rns.moddown import ModDown
from ..rns.modup import ModUp
from ..rns.poly import PolyDomain, RnsPolynomial
from .context import CkksContext
from .keys import SwitchKey

__all__ = ["KeySwitcher"]


class KeySwitcher:
    """Executes generalized key switching against a :class:`SwitchKey`."""

    def __init__(self, context: CkksContext) -> None:
        self.context = context
        self._modup_cache = {}
        self._moddown_cache = {}

    def switch(self, polynomial: RnsPolynomial, switch_key: SwitchKey,
               level: int) -> Tuple[RnsPolynomial, RnsPolynomial]:
        """Key-switch ``polynomial`` (coefficient domain, level basis)."""
        context = self.context
        kernels = context.kernels
        if polynomial.domain != PolyDomain.COEFFICIENT:
            raise ValueError("key switching expects a coefficient-domain polynomial")
        active = context.moduli_at_level(level)
        if tuple(polynomial.moduli) != active:
            raise ValueError("polynomial basis does not match the requested level")
        extended = context.extended_moduli_at_level(level)
        key_level = switch_key.at_level(level)

        c0_acc = RnsPolynomial.zero(context.ring_degree, extended, PolyDomain.EVALUATION)
        c1_acc = RnsPolynomial.zero(context.ring_degree, extended, PolyDomain.EVALUATION)
        for group, (b_poly, a_poly) in zip(key_level.group_moduli, key_level.pairs):
            slice_poly = polynomial.restrict_to(group)
            modup = self._modup_for(group, extended)
            kernels.counter.record(KernelName.CONV, len(extended) - len(group))
            extended_slice = modup.apply(slice_poly)
            slice_eval = kernel_ops.ntt(kernels, extended_slice)
            c0_acc = kernel_ops.element_add(
                kernels, c0_acc, kernel_ops.hadamard_multiply(kernels, slice_eval, b_poly)
            )
            c1_acc = kernel_ops.element_add(
                kernels, c1_acc, kernel_ops.hadamard_multiply(kernels, slice_eval, a_poly)
            )

        c0_coeff = kernel_ops.intt(kernels, c0_acc)
        c1_coeff = kernel_ops.intt(kernels, c1_acc)
        moddown = self._moddown_for(active)
        kernels.counter.record(KernelName.CONV, 2 * len(active))
        return moddown.apply(c0_coeff), moddown.apply(c1_coeff)

    # ------------------------------------------------------------------
    def _modup_for(self, group, extended) -> ModUp:
        key = (tuple(group), tuple(extended))
        instance = self._modup_cache.get(key)
        if instance is None:
            instance = ModUp(group, extended)
            self._modup_cache[key] = instance
        return instance

    def _moddown_for(self, active) -> ModDown:
        key = tuple(active)
        instance = self._moddown_cache.get(key)
        if instance is None:
            instance = ModDown(active, self.context.basis.special_primes)
            self._moddown_cache[key] = instance
        return instance
