"""The CKKS evaluator: HADD, HMULT, CMULT, HROTATE, RESCALE (paper Algs. 2-6).

Every operation is composed from the seven reusable kernels of the
hierarchical reconstruction, routed through the kernel layer so that the
instrumentation counters reproduce the operation→kernel mapping of
Table II of the paper.
"""

from __future__ import annotations

import math
from typing import Optional

from ..kernels import ops as kernel_ops
from ..kernels.automorphism import galois_element_for_rotation
from ..numtheory.modular import mat_mod_mul, mat_mod_reduce, mat_mod_sub, moduli_column
from ..rns.poly import RnsPolynomial
from .ciphertext import Ciphertext, Plaintext
from .context import CkksContext
from .keys import RotationKeySet, SwitchKey
from .keyswitch import KeySwitcher

__all__ = ["Evaluator"]

_RELATIVE_SCALE_TOLERANCE = 1e-6


class Evaluator:
    """Homomorphic operations on CKKS ciphertexts."""

    def __init__(self, context: CkksContext) -> None:
        self.context = context
        self.key_switcher = KeySwitcher(context)

    # ------------------------------------------------------------------
    # Level and scale bookkeeping
    # ------------------------------------------------------------------
    def drop_to_level(self, ciphertext: Ciphertext, level: int) -> Ciphertext:
        """Reduce a ciphertext to a lower level by dropping RNS limbs."""
        if level > ciphertext.level:
            raise ValueError("cannot raise the level of a ciphertext")
        if level == ciphertext.level:
            return ciphertext.copy()
        moduli = self.context.moduli_at_level(level)
        return Ciphertext(
            c0=ciphertext.c0.restrict_to(moduli),
            c1=ciphertext.c1.restrict_to(moduli),
            scale=ciphertext.scale,
            level=level,
        )

    def align(self, lhs: Ciphertext, rhs: Ciphertext):
        """Bring two ciphertexts to the same (minimum) level."""
        level = min(lhs.level, rhs.level)
        return self.drop_to_level(lhs, level), self.drop_to_level(rhs, level)

    def _check_scales(self, lhs_scale: float, rhs_scale: float) -> None:
        if not math.isclose(lhs_scale, rhs_scale, rel_tol=_RELATIVE_SCALE_TOLERANCE):
            raise ValueError(
                "scale mismatch (%.3g vs %.3g); rescale before adding" %
                (lhs_scale, rhs_scale)
            )

    # ------------------------------------------------------------------
    # HADD / subtraction (Alg. 5)
    # ------------------------------------------------------------------
    def add(self, lhs: Ciphertext, rhs: Ciphertext) -> Ciphertext:
        """HADD: element-wise addition of two ciphertexts."""
        lhs, rhs = self.align(lhs, rhs)
        self._check_scales(lhs.scale, rhs.scale)
        kernels = self.context.kernels
        return Ciphertext(
            c0=kernel_ops.element_add(kernels, lhs.c0, rhs.c0),
            c1=kernel_ops.element_add(kernels, lhs.c1, rhs.c1),
            scale=lhs.scale,
            level=lhs.level,
        )

    def subtract(self, lhs: Ciphertext, rhs: Ciphertext) -> Ciphertext:
        """Element-wise subtraction of two ciphertexts."""
        lhs, rhs = self.align(lhs, rhs)
        self._check_scales(lhs.scale, rhs.scale)
        kernels = self.context.kernels
        return Ciphertext(
            c0=kernel_ops.element_subtract(kernels, lhs.c0, rhs.c0),
            c1=kernel_ops.element_subtract(kernels, lhs.c1, rhs.c1),
            scale=lhs.scale,
            level=lhs.level,
        )

    def negate(self, ciphertext: Ciphertext) -> Ciphertext:
        """Negate a ciphertext."""
        return Ciphertext(
            c0=ciphertext.c0.negate(),
            c1=ciphertext.c1.negate(),
            scale=ciphertext.scale,
            level=ciphertext.level,
        )

    def add_plain(self, ciphertext: Ciphertext, plaintext: Plaintext) -> Ciphertext:
        """Add an encoded plaintext to a ciphertext."""
        self._check_scales(ciphertext.scale, plaintext.scale)
        kernels = self.context.kernels
        plain_poly = self._plain_at_level(plaintext, ciphertext.level)
        return Ciphertext(
            c0=kernel_ops.element_add(kernels, ciphertext.c0, plain_poly),
            c1=ciphertext.c1.copy(),
            scale=ciphertext.scale,
            level=ciphertext.level,
        )

    # ------------------------------------------------------------------
    # CMULT (Alg. 3)
    # ------------------------------------------------------------------
    def multiply_plain(self, ciphertext: Ciphertext, plaintext: Plaintext) -> Ciphertext:
        """CMULT: multiply a ciphertext by an encoded plaintext."""
        kernels = self.context.kernels
        planner = self.context.planner
        plain_poly = self._plain_at_level(plaintext, ciphertext.level)
        plain_eval = kernel_ops.ntt(kernels, plain_poly)
        c0_eval = kernel_ops.ntt(kernels, ciphertext.c0)
        c1_eval = kernel_ops.ntt(kernels, ciphertext.c1)
        d0 = kernel_ops.hadamard_multiply(kernels, c0_eval, plain_eval)
        d1 = kernel_ops.hadamard_multiply(kernels, c1_eval, plain_eval)
        return Ciphertext(
            c0=kernel_ops.intt(kernels, d0),
            c1=kernel_ops.intt(kernels, d1),
            scale=ciphertext.scale * plaintext.scale,
            level=ciphertext.level,
        )

    # ------------------------------------------------------------------
    # HMULT (Alg. 2)
    # ------------------------------------------------------------------
    def multiply(self, lhs: Ciphertext, rhs: Ciphertext,
                 relinearization_key: SwitchKey) -> Ciphertext:
        """HMULT: ciphertext-by-ciphertext multiplication with relinearization."""
        lhs, rhs = self.align(lhs, rhs)
        kernels = self.context.kernels
        level = lhs.level

        a0 = kernel_ops.ntt(kernels, lhs.c0)
        a1 = kernel_ops.ntt(kernels, lhs.c1)
        b0 = kernel_ops.ntt(kernels, rhs.c0)
        b1 = kernel_ops.ntt(kernels, rhs.c1)

        d0 = kernel_ops.hadamard_multiply(kernels, a0, b0)
        cross0 = kernel_ops.hadamard_multiply(kernels, a0, b1)
        cross1 = kernel_ops.hadamard_multiply(kernels, a1, b0)
        d1 = kernel_ops.element_add(kernels, cross0, cross1)
        d2 = kernel_ops.hadamard_multiply(kernels, a1, b1)

        d2_coeff = kernel_ops.intt(kernels, d2)
        switched0, switched1 = self.key_switcher.switch(d2_coeff,
                                                        relinearization_key, level)
        c0 = kernel_ops.element_add(kernels, kernel_ops.intt(kernels, d0), switched0)
        c1 = kernel_ops.element_add(kernels, kernel_ops.intt(kernels, d1), switched1)
        return Ciphertext(c0=c0, c1=c1, scale=lhs.scale * rhs.scale, level=level)

    def multiply_and_rescale(self, lhs: Ciphertext, rhs: Ciphertext,
                             relinearization_key: SwitchKey) -> Ciphertext:
        """HMULT followed by RESCALE (the common usage pattern)."""
        return self.rescale(self.multiply(lhs, rhs, relinearization_key))

    def square(self, ciphertext: Ciphertext, relinearization_key: SwitchKey) -> Ciphertext:
        """Square a ciphertext (HMULT with itself)."""
        return self.multiply(ciphertext, ciphertext, relinearization_key)

    # ------------------------------------------------------------------
    # RESCALE (Alg. 6)
    # ------------------------------------------------------------------
    def rescale(self, ciphertext: Ciphertext) -> Ciphertext:
        """RESCALE: drop the last prime and divide the scale by it."""
        if ciphertext.level == 0:
            raise ValueError("cannot rescale a level-0 ciphertext")
        last_prime = ciphertext.moduli[-1]
        new_level = ciphertext.level - 1
        c0 = self._rescale_poly(ciphertext.c0)
        c1 = self._rescale_poly(ciphertext.c1)
        # Ele-Sub bookkeeping happens inside _rescale_poly; record level drop.
        return Ciphertext(c0=c0, c1=c1, scale=ciphertext.scale / last_prime,
                          level=new_level)

    def _rescale_poly(self, polynomial: RnsPolynomial) -> RnsPolynomial:
        """Exact rescaling ``(c_i - c_last) * q_last^{-1} mod q_i``, all limbs at once.

        The per-level inverse column ``q_last^{-1} mod q_i`` is cached on
        the context, so a rescale is three vectorised funnel launches over
        the surviving limbs (reduce the last limb per surviving prime,
        subtract, multiply by the inverse) — all threading the polynomial's
        residency handle, so a device-resident ciphertext rescales without
        a host copy.  Bit-identical to the historical host expression
        ``(c[:-1] - c[-1] % column) % column`` times the inverse.
        """
        kernels = self.context.kernels
        moduli = polynomial.moduli[:-1]
        column = moduli_column(moduli)
        inverse_column = self.context.rescale_inverses(polynomial.moduli)
        buffer = polynomial.buffer
        # (1, N) last limb reduced against every surviving prime: (L-1, N).
        reduced_last = mat_mod_reduce(buffer[-1:], column)
        diff = mat_mod_sub(buffer[:-1], reduced_last, column)
        # Funnel multiply: exact even for moduli whose residue products
        # overflow int64, matching the batched rescale bit for bit.
        residues = mat_mod_mul(diff, inverse_column, column)
        kernels.counter.record(kernel_ops.KernelName.ELE_SUB, len(moduli))
        return RnsPolynomial(polynomial.ring_degree, moduli, residues,
                             polynomial.domain)

    # ------------------------------------------------------------------
    # HROTATE (Alg. 4) and conjugation
    # ------------------------------------------------------------------
    def rotate(self, ciphertext: Ciphertext, steps: int,
               rotation_keys: RotationKeySet) -> Ciphertext:
        """HROTATE: cyclically rotate the slot vector by ``steps`` positions."""
        steps %= self.context.slot_count
        if steps == 0:
            return ciphertext.copy()
        galois_element = galois_element_for_rotation(steps, self.context.ring_degree)
        switch_key = rotation_keys.for_steps(steps)
        return self._apply_galois(ciphertext, galois_element, switch_key)

    def conjugate(self, ciphertext: Ciphertext,
                  rotation_keys: RotationKeySet) -> Ciphertext:
        """Complex-conjugate the slot vector (HCONJ)."""
        if rotation_keys.conjugation_key is None:
            raise ValueError("rotation key set has no conjugation key")
        kernels = self.context.kernels
        rotated_c0 = kernel_ops.conjugate(kernels, ciphertext.c0)
        rotated_c1 = kernel_ops.conjugate(kernels, ciphertext.c1)
        return self._switch_rotated(ciphertext, rotated_c0, rotated_c1,
                                    rotation_keys.conjugation_key)

    def _apply_galois(self, ciphertext: Ciphertext, galois_element: int,
                      switch_key: SwitchKey) -> Ciphertext:
        kernels = self.context.kernels
        rotated_c0 = kernel_ops.frobenius_map(kernels, ciphertext.c0, galois_element)
        rotated_c1 = kernel_ops.frobenius_map(kernels, ciphertext.c1, galois_element)
        return self._switch_rotated(ciphertext, rotated_c0, rotated_c1, switch_key)

    def _switch_rotated(self, ciphertext: Ciphertext, rotated_c0: RnsPolynomial,
                        rotated_c1: RnsPolynomial, switch_key: SwitchKey) -> Ciphertext:
        kernels = self.context.kernels
        switched0, switched1 = self.key_switcher.switch(rotated_c1, switch_key,
                                                        ciphertext.level)
        c0 = kernel_ops.element_add(kernels, rotated_c0, switched0)
        return Ciphertext(c0=c0, c1=switched1, scale=ciphertext.scale,
                          level=ciphertext.level)

    # ------------------------------------------------------------------
    # Convenience: encrypted linear algebra helpers used by the examples
    # ------------------------------------------------------------------
    def rotate_and_sum(self, ciphertext: Ciphertext, rotation_keys: RotationKeySet,
                       count: Optional[int] = None) -> Ciphertext:
        """Sum the first ``count`` slots into every slot via log-depth rotations.

        Requires rotation keys for the powers of two below ``count``.
        """
        slot_count = self.context.slot_count
        count = slot_count if count is None else count
        if count & (count - 1):
            raise ValueError("rotate_and_sum requires a power-of-two slot count")
        result = ciphertext
        step = 1
        while step < count:
            rotated = self.rotate(result, step, rotation_keys)
            result = self.add(result, rotated)
            step *= 2
        return result

    def _plain_at_level(self, plaintext: Plaintext, level: int) -> RnsPolynomial:
        """Restrict an encoded plaintext to the ciphertext's active basis."""
        moduli = self.context.moduli_at_level(level)
        if tuple(plaintext.polynomial.moduli) == moduli:
            return plaintext.polynomial
        return plaintext.polynomial.restrict_to(moduli)
