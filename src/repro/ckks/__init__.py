"""Full-RNS CKKS: parameters, encoding, keys, encryption, evaluation, bootstrap."""

from .batched_evaluator import BatchedEvaluator
from .batched_keyswitch import BatchedKeySwitcher
from .ciphertext import Ciphertext, Plaintext
from .context import CkksContext
from .decryptor import Decryptor
from .encoder import CkksEncoder
from .encryptor import Encryptor
from .evaluator import Evaluator
from .keygen import KeyGenerator
from .keys import PublicKey, RotationKeySet, SecretKey, SwitchKey
from .keyswitch import KeySwitcher
from .params import FUNCTIONAL_PARAMETERS, PAPER_PARAMETERS, CkksParameters, get_preset

__all__ = [
    "CkksParameters",
    "PAPER_PARAMETERS",
    "FUNCTIONAL_PARAMETERS",
    "get_preset",
    "CkksContext",
    "CkksEncoder",
    "Plaintext",
    "Ciphertext",
    "SecretKey",
    "PublicKey",
    "SwitchKey",
    "RotationKeySet",
    "KeyGenerator",
    "KeySwitcher",
    "BatchedKeySwitcher",
    "Encryptor",
    "Decryptor",
    "Evaluator",
    "BatchedEvaluator",
]
