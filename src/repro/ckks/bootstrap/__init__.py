"""Bootstrap pipeline: ModRaise, CoeffToSlot, EvalMod (sine), SlotToCoeff."""

from .bootstrapper import BootstrapConfig, Bootstrapper
from .bsgs import (
    BsgsLinearTransform,
    bsgs_step_counts,
    matrix_diagonals,
    required_rotations,
)
from .dft import CoeffToSlot, SlotToCoeff, embedding_matrix
from .mod_raise import ModRaise
from .sine_eval import (
    SineEvaluator,
    evaluate_polynomial,
    taylor_cosine_coefficients,
    taylor_sine_coefficients,
)

__all__ = [
    "Bootstrapper",
    "BootstrapConfig",
    "ModRaise",
    "CoeffToSlot",
    "SlotToCoeff",
    "embedding_matrix",
    "BsgsLinearTransform",
    "matrix_diagonals",
    "bsgs_step_counts",
    "required_rotations",
    "SineEvaluator",
    "taylor_sine_coefficients",
    "taylor_cosine_coefficients",
    "evaluate_polynomial",
]
