"""Baby-Step Giant-Step homomorphic linear transforms.

The SlotToCoeff / CoeffToSlot stages of bootstrapping (and the dense layers
of the encrypted workloads) are matrix–vector products evaluated under
encryption.  Writing the matrix in diagonal form,

    M @ v = sum_d diag_d(M) ⊙ rot(v, d),

the Baby-Step Giant-Step (BSGS) algorithm groups the ``n`` diagonals into
``n1`` baby steps and ``n2`` giant steps so that only ``n1 + n2`` distinct
rotations (instead of ``n``) are required — exactly the optimisation the
paper cites for the homomorphic DFT [14, 59].
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ciphertext import Ciphertext, Plaintext
from ..context import CkksContext
from ..encryptor import Encryptor
from ..evaluator import Evaluator
from ..keys import RotationKeySet

__all__ = ["matrix_diagonals", "bsgs_step_counts", "required_rotations", "BsgsLinearTransform"]


def matrix_diagonals(matrix: np.ndarray) -> Dict[int, np.ndarray]:
    """Return the generalized diagonals ``diag_d[i] = M[i, (i+d) % n]``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("BSGS transform requires a square matrix")
    n = matrix.shape[0]
    diagonals: Dict[int, np.ndarray] = {}
    for offset in range(n):
        diagonal = np.array([matrix[i, (i + offset) % n] for i in range(n)])
        if np.any(diagonal != 0):
            diagonals[offset] = diagonal
    return diagonals


def bsgs_step_counts(dimension: int) -> Sequence[int]:
    """Choose ``(n1, n2)`` with ``n1 * n2 >= dimension`` and ``n1 ≈ sqrt(dimension)``."""
    n1 = 1 << max(0, int(math.ceil(math.log2(max(1, math.isqrt(dimension))))))
    n2 = -(-dimension // n1)
    return (n1, n2)


def required_rotations(dimension: int) -> List[int]:
    """Rotation step counts a BSGS transform of size ``dimension`` may need."""
    n1, n2 = bsgs_step_counts(dimension)
    steps = set()
    for j in range(1, n1):
        steps.add(j)
    for i in range(1, n2):
        steps.add((i * n1) % dimension)
    steps.discard(0)
    return sorted(steps)


class BsgsLinearTransform:
    """Homomorphic evaluation of ``ct -> Enc(M @ v)`` with BSGS rotations."""

    def __init__(self, context: CkksContext, matrix: np.ndarray, *,
                 scale: Optional[float] = None) -> None:
        self.context = context
        self.matrix = np.asarray(matrix, dtype=np.complex128)
        if self.matrix.shape[0] != context.slot_count:
            raise ValueError(
                "matrix must be %d x %d (slot count)" % (context.slot_count,
                                                         context.slot_count)
            )
        self.scale = context.scale if scale is None else scale
        self.diagonals = matrix_diagonals(self.matrix)
        self.n1, self.n2 = bsgs_step_counts(context.slot_count)

    # ------------------------------------------------------------------
    def rotation_steps(self) -> List[int]:
        """Rotations required to evaluate this particular matrix."""
        steps = set()
        slot_count = self.context.slot_count
        for offset in self.diagonals:
            baby = offset % self.n1
            giant = offset - baby
            if baby:
                steps.add(baby)
            if giant:
                steps.add(giant % slot_count)
        return sorted(steps)

    def apply(self, ciphertext: Ciphertext, evaluator: Evaluator,
              encryptor: Encryptor, rotation_keys: RotationKeySet) -> Ciphertext:
        """Evaluate the transform on ``ciphertext`` (one level consumed)."""
        slot_count = self.context.slot_count
        # Group diagonals by giant step so each baby-rotated ciphertext is reused.
        by_giant: Dict[int, Dict[int, np.ndarray]] = {}
        for offset, diagonal in self.diagonals.items():
            baby = offset % self.n1
            giant = offset - baby
            by_giant.setdefault(giant, {})[baby] = diagonal

        baby_cache: Dict[int, Ciphertext] = {0: ciphertext}
        accumulator = None
        for giant in sorted(by_giant):
            inner = None
            for baby, diagonal in sorted(by_giant[giant].items()):
                rotated = baby_cache.get(baby)
                if rotated is None:
                    rotated = evaluator.rotate(ciphertext, baby, rotation_keys)
                    baby_cache[baby] = rotated
                # Pre-rotate the diagonal by -giant so one giant rotation at
                # the end of the group suffices (the standard BSGS trick).
                shifted = np.roll(diagonal, giant % slot_count)
                plain = encryptor.encode(shifted, scale=self.scale,
                                         level=rotated.level)
                term = evaluator.multiply_plain(rotated, plain)
                inner = term if inner is None else evaluator.add(inner, term)
            if giant % slot_count:
                inner = evaluator.rotate(inner, giant % slot_count, rotation_keys)
            accumulator = inner if accumulator is None else evaluator.add(accumulator, inner)
        if accumulator is None:
            raise ValueError("the transform matrix is identically zero")
        return evaluator.rescale(accumulator)

    def apply_many(self, ciphertexts: Sequence[Ciphertext],
                   batched_evaluator, encryptor: Encryptor,
                   rotation_keys: RotationKeySet) -> List[Ciphertext]:
        """Evaluate the transform on ``B`` streams as fused launches.

        The baby-step rotations run through
        :meth:`~repro.ckks.batched_evaluator.BatchedEvaluator.rotate`
        (one automorphism gather plus one B-fused key switch per step),
        every giant-step group's diagonal multiplies are single fused
        CMULT launches, and the giant rotations fuse the same way.  Each
        shifted diagonal is encoded once per (scale, level) — not once
        per ciphertext — which is bit-identical to the sequential path
        because encoding is deterministic.  A single stream delegates to
        :meth:`apply`; results and kernel counters match the sequential
        loop exactly.
        """
        ciphertexts = list(ciphertexts)
        if not ciphertexts:
            return []
        if len(ciphertexts) == 1:
            return [self.apply(ciphertexts[0], batched_evaluator.evaluator,
                               encryptor, rotation_keys)]
        slot_count = self.context.slot_count
        by_giant: Dict[int, Dict[int, np.ndarray]] = {}
        for offset, diagonal in self.diagonals.items():
            baby = offset % self.n1
            giant = offset - baby
            by_giant.setdefault(giant, {})[baby] = diagonal

        baby_cache: Dict[int, List[Ciphertext]] = {0: ciphertexts}
        accumulator = None
        for giant in sorted(by_giant):
            inner = None
            for baby, diagonal in sorted(by_giant[giant].items()):
                rotated = baby_cache.get(baby)
                if rotated is None:
                    rotated = batched_evaluator.rotate(ciphertexts, baby,
                                                       rotation_keys)
                    baby_cache[baby] = rotated
                shifted = np.roll(diagonal, giant % slot_count)
                plains = self._encode_per_level(shifted, rotated, encryptor)
                terms = batched_evaluator.multiply_plain(rotated, plains)
                inner = terms if inner is None else batched_evaluator.add(
                    inner, terms)
            if giant % slot_count:
                inner = batched_evaluator.rotate(inner, giant % slot_count,
                                                 rotation_keys)
            accumulator = inner if accumulator is None else \
                batched_evaluator.add(accumulator, inner)
        if accumulator is None:
            raise ValueError("the transform matrix is identically zero")
        return batched_evaluator.rescale(accumulator)

    def _encode_per_level(self, shifted: np.ndarray,
                          ciphertexts: Sequence[Ciphertext],
                          encryptor: Encryptor) -> List[Plaintext]:
        """One deterministic encode per distinct stream level."""
        cache: Dict[int, object] = {}
        plains = []
        for ciphertext in ciphertexts:
            plain = cache.get(ciphertext.level)
            if plain is None:
                plain = encryptor.encode(shifted, scale=self.scale,
                                         level=ciphertext.level)
                cache[ciphertext.level] = plain
            plains.append(plain)
        return plains

    def reference(self, values: Sequence[complex]) -> np.ndarray:
        """Plaintext evaluation of the same transform (test oracle)."""
        vector = np.zeros(self.context.slot_count, dtype=np.complex128)
        values = np.asarray(values, dtype=np.complex128)
        vector[: values.size] = values
        return self.matrix @ vector
