"""The full CKKS bootstrap pipeline (paper Figure 6).

Stages, in the order of the classic (non-slim) pipeline:

1. **ModRaise** — re-embed the exhausted ciphertext at a high level,
   introducing the ``q0 * I(X)`` term;
2. **CoeffToSlot** — homomorphic DFT moving coefficients into slots
   (BSGS linear transforms + conjugation);
3. **EvalMod / Sine evaluation** — remove ``q0 * I`` by evaluating
   ``(q0 / 2*pi) * sin(2*pi*t / q0)``: Taylor series of sine *and*
   cosine at the reduced argument ``theta / 2^r`` over one shared power
   ladder, then ``r`` exact double-angle iterations
   ``(s, c) -> (2*s*c, 1 - 2*s^2)``;
4. **SlotToCoeff** — homomorphic DFT back to coefficients.

The result is a ciphertext of the same message at a higher level.  The
functional accuracy of the composed pipeline at toy parameters is limited
by the small prime sizes this pure-Python reproduction uses (the paper
runs with 60-bit-scale moduli); the dominant residual is the intrinsic
sine-vs-identity error ``~(2*pi*m/q0)^2 * m / 6``, so messages must stay
small relative to ``q0 / Delta``.

:meth:`Bootstrapper.bootstrap_many` runs the whole pipeline for ``B``
ciphertexts as fused ``(B, L, N)`` / ``(B, dnum, L, N)`` launches through
a :class:`~repro.ckks.batched_evaluator.BatchedEvaluator` — bit-identical
to looping :meth:`Bootstrapper.bootstrap`, with identical kernel counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..batched_evaluator import BatchedEvaluator
from ..ciphertext import Ciphertext
from ..context import CkksContext
from ..encryptor import Encryptor
from ..evaluator import Evaluator
from ..keys import RotationKeySet, SwitchKey
from .dft import CoeffToSlot, SlotToCoeff
from .mod_raise import ModRaise
from .sine_eval import (
    SineEvaluator,
    taylor_cosine_coefficients,
    taylor_sine_coefficients,
)

__all__ = ["BootstrapConfig", "Bootstrapper"]


@dataclass
class BootstrapConfig:
    """Tunable knobs of the bootstrap pipeline."""

    taylor_degree: int = 7
    double_angle_iterations: int = 2
    target_level: Optional[int] = None

    @property
    def eval_mod_depth(self) -> int:
        """Levels consumed by the EvalMod stage.

        The shared sine/cosine ladder costs ``ceil(log2(degree)) + 1``
        levels, each double-angle iteration one, and the final
        ``q0 / (2*pi*Delta)`` factor one more.
        """
        sine_depth = max(1, math.ceil(math.log2(max(2, self.taylor_degree)))) + 1
        return sine_depth + self.double_angle_iterations + 1


class Bootstrapper:
    """Composes ModRaise, CoeffToSlot, EvalMod and SlotToCoeff."""

    def __init__(self, context: CkksContext,
                 config: Optional[BootstrapConfig] = None) -> None:
        self.context = context
        self.config = config or BootstrapConfig()
        self.mod_raise = ModRaise(context, self.config.target_level)
        self.coeff_to_slot = CoeffToSlot(context)
        self.slot_to_coeff = SlotToCoeff(context)

    # ------------------------------------------------------------------
    def required_rotation_steps(self) -> List[int]:
        """All rotation steps needed by the two DFT stages."""
        steps = set(self.coeff_to_slot.rotation_steps())
        steps.update(self.slot_to_coeff.rotation_steps())
        return sorted(steps)

    # ------------------------------------------------------------------
    def bootstrap(self, ciphertext: Ciphertext, evaluator: Evaluator,
                  encryptor: Encryptor, relinearization_key: SwitchKey,
                  rotation_keys: RotationKeySet) -> Ciphertext:
        """Run the full pipeline and return a refreshed ciphertext."""
        raised = self.mod_raise.apply(ciphertext)
        slot_low, slot_high = self.coeff_to_slot.apply(
            raised, evaluator, encryptor, rotation_keys)
        reduced_low = self._eval_mod(slot_low, evaluator, encryptor,
                                     relinearization_key, rotation_keys)
        reduced_high = self._eval_mod(slot_high, evaluator, encryptor,
                                      relinearization_key, rotation_keys)
        return self.slot_to_coeff.apply(reduced_low, reduced_high,
                                        evaluator, encryptor, rotation_keys)

    def bootstrap_many(self, ciphertexts: Sequence[Ciphertext],
                       batched_evaluator: BatchedEvaluator,
                       encryptor: Encryptor, relinearization_key: SwitchKey,
                       rotation_keys: RotationKeySet) -> List[Ciphertext]:
        """Bootstrap ``B`` ciphertexts as fused batched launches.

        Every stage runs the exact per-stream operation sequence of
        :meth:`bootstrap` through the batched evaluator, so results are
        bit-identical to the sequential loop and the kernel counters
        record the same invocations.  A single stream delegates to the
        sequential pipeline (no stacked temporaries), an empty batch
        returns immediately.
        """
        ciphertexts = list(ciphertexts)
        if not ciphertexts:
            return []
        if len(ciphertexts) == 1:
            return [self.bootstrap(ciphertexts[0], batched_evaluator.evaluator,
                                   encryptor, relinearization_key,
                                   rotation_keys)]
        raised = self.mod_raise.apply_many(ciphertexts)
        slot_lows, slot_highs = self.coeff_to_slot.apply_many(
            raised, batched_evaluator, encryptor, rotation_keys)
        reduced_lows = self._eval_mod_many(
            slot_lows, batched_evaluator, encryptor, relinearization_key)
        reduced_highs = self._eval_mod_many(
            slot_highs, batched_evaluator, encryptor, relinearization_key)
        return self.slot_to_coeff.apply_many(
            reduced_lows, reduced_highs, batched_evaluator, encryptor,
            rotation_keys)

    # ------------------------------------------------------------------
    def _sine_evaluator(self) -> SineEvaluator:
        """The sine/cosine pair evaluator at the reduced ladder argument."""
        base_prime = self.context.basis.ciphertext_primes[0]
        config = self.config
        ladder = 1 << config.double_angle_iterations
        # The slots currently hold t / Delta; the sine argument must be
        # 2*pi*t/(q0 * 2^r), so the scale factor below folds Delta back in.
        scale_factor = (2.0 * math.pi * self.context.scale
                        / (base_prime * ladder))
        return SineEvaluator(
            self.context,
            taylor_sine_coefficients(config.taylor_degree, scale_factor),
            cosine_coefficients=taylor_cosine_coefficients(
                config.taylor_degree, scale_factor),
        )

    def _eval_mod(self, ciphertext: Ciphertext, evaluator: Evaluator,
                  encryptor: Encryptor, relinearization_key: SwitchKey,
                  rotation_keys: RotationKeySet) -> Ciphertext:
        """Approximate ``t mod q0`` on every slot via the sine evaluation."""
        base_prime = self.context.basis.ciphertext_primes[0]
        sine = self._sine_evaluator()
        # Both series at the reduced argument a = 2*pi*t/(q0*2^r), then r
        # exact double-angle iterations: s' = 2*s*c, c' = 1 - 2*s^2.  Each
        # iteration costs one level (the two HMULTs run side by side); the
        # doublings are plain HADDs of a ciphertext with itself.
        sin_ct, cos_ct = sine.apply_pair(ciphertext, evaluator, encryptor,
                                         relinearization_key)
        for _ in range(self.config.double_angle_iterations):
            product = evaluator.multiply_and_rescale(sin_ct, cos_ct,
                                                     relinearization_key)
            squared = evaluator.multiply_and_rescale(sin_ct, sin_ct,
                                                     relinearization_key)
            sin_ct = evaluator.add(product, product)
            doubled = evaluator.add(squared, squared)
            cos_ct = evaluator.negate(doubled)
            one = encryptor.encode(
                np.full(self.context.slot_count, 1.0), scale=cos_ct.scale,
                level=cos_ct.level,
            )
            cos_ct = evaluator.add_plain(cos_ct, one)
        # Rescale the sine value back into message units: t mod q0 ~=
        # (q0 / 2*pi) * sin(2*pi*t/q0); the slots should end up holding m/Delta.
        final_factor = base_prime / (2.0 * math.pi * self.context.scale)
        plain = encryptor.encode(
            np.full(self.context.slot_count, final_factor), scale=sin_ct.scale,
            level=sin_ct.level,
        )
        return evaluator.rescale(evaluator.multiply_plain(sin_ct, plain))

    def _eval_mod_many(self, ciphertexts: Sequence[Ciphertext],
                       batched_evaluator: BatchedEvaluator,
                       encryptor: Encryptor,
                       relinearization_key: SwitchKey) -> List[Ciphertext]:
        """Batched :meth:`_eval_mod`: fused sine ladder and double angles."""
        base_prime = self.context.basis.ciphertext_primes[0]
        sine = self._sine_evaluator()
        sin_cts, cos_cts = sine.apply_pair_many(
            ciphertexts, batched_evaluator, encryptor, relinearization_key)
        for _ in range(self.config.double_angle_iterations):
            products = batched_evaluator.multiply_and_rescale(
                sin_cts, cos_cts, relinearization_key)
            squares = batched_evaluator.multiply_and_rescale(
                sin_cts, sin_cts, relinearization_key)
            sin_cts = batched_evaluator.add(products, products)
            doubled = batched_evaluator.add(squares, squares)
            cos_cts = batched_evaluator.negate(doubled)
            ones = sine._encoded_constant_per_level(1.0, cos_cts, encryptor)
            cos_cts = batched_evaluator.add_plain(cos_cts, ones)
        final_factor = base_prime / (2.0 * math.pi * self.context.scale)
        plains = sine._encoded_constant_per_level(final_factor, sin_cts,
                                                  encryptor)
        return batched_evaluator.rescale(
            batched_evaluator.multiply_plain(sin_cts, plains))

    # ------------------------------------------------------------------
    def reference_mod(self, values: np.ndarray) -> np.ndarray:
        """Plaintext reference of the EvalMod stage (for the tests)."""
        base_prime = self.context.basis.ciphertext_primes[0]
        values = np.asarray(values, dtype=np.float64)
        return base_prime / (2 * math.pi) * np.sin(2 * math.pi * values / base_prime)
