"""The full CKKS bootstrap pipeline (paper Figure 6).

Stages, in the order of the classic (non-slim) pipeline:

1. **ModRaise** — re-embed the exhausted ciphertext at a high level,
   introducing the ``q0 * I(X)`` term;
2. **CoeffToSlot** — homomorphic DFT moving coefficients into slots
   (BSGS linear transforms + conjugation);
3. **EvalMod / Sine evaluation** — remove ``q0 * I`` by evaluating
   ``(q0 / 2*pi) * sin(2*pi*t / q0)`` with a Taylor polynomial of
   ``exp(i * theta / 2^r)`` followed by ``r`` repeated squarings
   (the double-angle ladder) and an imaginary-part extraction;
4. **SlotToCoeff** — homomorphic DFT back to coefficients.

The result is a ciphertext of the same message at a higher level.  The
functional accuracy of the composed pipeline at toy parameters is limited
by the small prime sizes this pure-Python reproduction uses (the paper
runs with 60-bit-scale moduli); every stage is therefore also tested
individually against its plaintext reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..ciphertext import Ciphertext
from ..context import CkksContext
from ..encryptor import Encryptor
from ..evaluator import Evaluator
from ..keys import RotationKeySet, SwitchKey
from .dft import CoeffToSlot, SlotToCoeff
from .mod_raise import ModRaise
from .sine_eval import SineEvaluator, taylor_sine_coefficients

__all__ = ["BootstrapConfig", "Bootstrapper"]


@dataclass
class BootstrapConfig:
    """Tunable knobs of the bootstrap pipeline."""

    taylor_degree: int = 7
    double_angle_iterations: int = 2
    target_level: Optional[int] = None

    @property
    def eval_mod_depth(self) -> int:
        """Approximate number of levels consumed by the EvalMod stage."""
        return self.double_angle_iterations + max(
            1, math.ceil(math.log2(max(2, self.taylor_degree)))) + 1


class Bootstrapper:
    """Composes ModRaise, CoeffToSlot, EvalMod and SlotToCoeff."""

    def __init__(self, context: CkksContext, config: BootstrapConfig = None) -> None:
        self.context = context
        self.config = config or BootstrapConfig()
        self.mod_raise = ModRaise(context, self.config.target_level)
        self.coeff_to_slot = CoeffToSlot(context)
        self.slot_to_coeff = SlotToCoeff(context)

    # ------------------------------------------------------------------
    def required_rotation_steps(self) -> List[int]:
        """All rotation steps needed by the two DFT stages."""
        steps = set(self.coeff_to_slot.rotation_steps())
        steps.update(self.slot_to_coeff.rotation_steps())
        return sorted(steps)

    # ------------------------------------------------------------------
    def bootstrap(self, ciphertext: Ciphertext, evaluator: Evaluator,
                  encryptor: Encryptor, relinearization_key: SwitchKey,
                  rotation_keys: RotationKeySet) -> Ciphertext:
        """Run the full pipeline and return a refreshed ciphertext."""
        raised = self.mod_raise.apply(ciphertext)
        slot_low, slot_high = self.coeff_to_slot.apply(
            raised, evaluator, encryptor, rotation_keys)
        reduced_low = self._eval_mod(slot_low, evaluator, encryptor,
                                     relinearization_key, rotation_keys)
        reduced_high = self._eval_mod(slot_high, evaluator, encryptor,
                                      relinearization_key, rotation_keys)
        return self.slot_to_coeff.apply(reduced_low, reduced_high,
                                        evaluator, encryptor, rotation_keys)

    # ------------------------------------------------------------------
    def _eval_mod(self, ciphertext: Ciphertext, evaluator: Evaluator,
                  encryptor: Encryptor, relinearization_key: SwitchKey,
                  rotation_keys: RotationKeySet) -> Ciphertext:
        """Approximate ``t mod q0`` on every slot via the sine evaluation."""
        base_prime = self.context.basis.ciphertext_primes[0]
        config = self.config
        ladder = 1 << config.double_angle_iterations
        # The slots currently hold t / Delta; the sine argument must be
        # 2*pi*t/(q0 * 2^r), so the scale factor below folds Delta back in.
        scale_factor = 2.0 * math.pi * self.context.scale / (base_prime * ladder)
        coefficients = taylor_sine_coefficients(config.taylor_degree, scale_factor)
        sine = SineEvaluator(self.context, coefficients)
        # sin(x) for the small argument; cos via 1 - 2*sin^2(x/2) would need a
        # second series, so we use the sine double-angle on sin/cos pairs
        # reconstructed from sin alone: sin(2a) = 2*sin(a)*cos(a) with
        # cos(a) ~= 1 - sin(a)^2/2 for the small ladder arguments.
        current = sine.apply(ciphertext, evaluator, encryptor, relinearization_key)
        for _ in range(config.double_angle_iterations):
            squared = evaluator.multiply_and_rescale(current, current, relinearization_key)
            half = encryptor.encode(
                np.full(self.context.slot_count, 0.5), scale=squared.scale,
                level=squared.level,
            )
            correction = evaluator.rescale(evaluator.multiply_plain(squared, half))
            doubled = evaluator.add(current, evaluator.drop_to_level(current, current.level))
            doubled = evaluator.drop_to_level(doubled, correction.level)
            doubled = Ciphertext(doubled.c0, doubled.c1, correction.scale, correction.level)
            current = evaluator.subtract(doubled, correction)
        # Rescale the sine value back into message units: t mod q0 ~=
        # (q0 / 2*pi) * sin(2*pi*t/q0); the slots should end up holding m/Delta.
        final_factor = base_prime / (2.0 * math.pi * self.context.scale)
        plain = encryptor.encode(
            np.full(self.context.slot_count, final_factor), scale=current.scale,
            level=current.level,
        )
        return evaluator.rescale(evaluator.multiply_plain(current, plain))

    # ------------------------------------------------------------------
    def reference_mod(self, values: np.ndarray) -> np.ndarray:
        """Plaintext reference of the EvalMod stage (for the tests)."""
        base_prime = self.context.basis.ciphertext_primes[0]
        values = np.asarray(values, dtype=np.float64)
        return base_prime / (2 * math.pi) * np.sin(2 * math.pi * values / base_prime)
