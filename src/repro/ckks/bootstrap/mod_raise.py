"""ModRaise: re-embed an exhausted ciphertext into a larger modulus.

A ciphertext at level 0 satisfies ``c0 + c1*s ≡ Delta*m (mod q0)``.
Re-interpreting the residues over the full prime chain keeps the equation
true over the integers only up to a multiple of ``q0``:

    c0 + c1*s = Delta*m + q0 * I(X)   over  R_{Q_L}

with ``I`` a small integer polynomial (its size is governed by the secret
key's Hamming weight).  Removing ``q0 * I`` homomorphically is the job of
the later EvalMod/sine stage; ModRaise itself is a pure basis extension.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ...numtheory.modular import moduli_column
from ...rns.poly import PolyDomain, RnsPolynomial
from ..ciphertext import Ciphertext
from ..context import CkksContext

__all__ = ["ModRaise"]


class ModRaise:
    """Raise level-0 ciphertexts back to a (near-)maximal level."""

    def __init__(self, context: CkksContext, target_level: Optional[int] = None) -> None:
        self.context = context
        self.target_level = context.max_level if target_level is None else target_level

    def apply(self, ciphertext: Ciphertext) -> Ciphertext:
        """Return the same ciphertext re-embedded at ``target_level``."""
        if ciphertext.level != 0:
            raise ValueError("ModRaise expects a level-0 (exhausted) ciphertext")
        if ciphertext.c0.domain != PolyDomain.COEFFICIENT:
            raise ValueError("ModRaise expects coefficient-domain ciphertexts")
        return Ciphertext(
            c0=self._raise_poly(ciphertext.c0),
            c1=self._raise_poly(ciphertext.c1),
            scale=ciphertext.scale,
            level=self.target_level,
        )

    def apply_many(self, ciphertexts: Sequence[Ciphertext]) -> List[Ciphertext]:
        """Raise ``B`` ciphertexts as one broadcast over the (B, L, N) stack.

        The centring and re-reduction are element-wise, so the batched
        broadcast is bit-identical to looping :meth:`apply`; a single
        stream delegates to the sequential path (no stacked temporaries).
        """
        ciphertexts = list(ciphertexts)
        if not ciphertexts:
            return []
        if len(ciphertexts) == 1:
            return [self.apply(ciphertexts[0])]
        for ciphertext in ciphertexts:
            if ciphertext.level != 0:
                raise ValueError(
                    "ModRaise expects level-0 (exhausted) ciphertexts")
            if ciphertext.c0.domain != PolyDomain.COEFFICIENT:
                raise ValueError(
                    "ModRaise expects coefficient-domain ciphertexts")
        target_moduli = self.context.moduli_at_level(self.target_level)
        column = moduli_column(target_moduli)
        raised_components = []
        for component in ("c0", "c1"):
            polys = [getattr(ct, component) for ct in ciphertexts]
            base_prime = polys[0].moduli[0]
            stacked = np.stack([poly.residues[0] for poly in polys])  # (B, N)
            centered = np.where(stacked > base_prime // 2,
                                stacked - base_prime, stacked)
            raised = centered[:, None, :] % column                    # (B, L, N)
            raised_components.append(raised)
        return [
            Ciphertext(
                c0=RnsPolynomial(ct.c0.ring_degree, target_moduli,
                                 raised_components[0][j], PolyDomain.COEFFICIENT),
                c1=RnsPolynomial(ct.c1.ring_degree, target_moduli,
                                 raised_components[1][j], PolyDomain.COEFFICIENT),
                scale=ct.scale,
                level=self.target_level,
            )
            for j, ct in enumerate(ciphertexts)
        ]

    def _raise_poly(self, polynomial: RnsPolynomial) -> RnsPolynomial:
        base_prime = polynomial.moduli[0]
        residues = polynomial.residues[0]
        # Centre the residues in (-q0/2, q0/2] before re-reducing so the
        # implicit integer polynomial I stays small.  The re-reduction over
        # the full chain is one broadcast against the moduli column.
        centered = np.where(residues > base_prime // 2, residues - base_prime, residues)
        target_moduli = self.context.moduli_at_level(self.target_level)
        raised = centered[None, :] % moduli_column(target_moduli)
        return RnsPolynomial(polynomial.ring_degree, target_moduli,
                             raised, PolyDomain.COEFFICIENT)
