"""Homomorphic sine evaluation (the EvalMod stage of bootstrapping).

After ModRaise the plaintext is ``m + q0 * I`` with a small integer
polynomial ``I``.  Reducing modulo ``q0`` is approximated by

    q0/(2*pi) * sin(2*pi * t / q0)  ≈  t mod q0     (for |m| << q0)

The sine is evaluated with a truncated Taylor series (the paper cites the
variable-precision Taylor approximation [8]); the polynomial is evaluated
homomorphically with a depth-optimal square-and-multiply scheme built on
HMULT/CMULT/HADD.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..ciphertext import Ciphertext
from ..context import CkksContext
from ..encryptor import Encryptor
from ..evaluator import Evaluator
from ..keys import SwitchKey

__all__ = ["taylor_sine_coefficients", "evaluate_polynomial", "SineEvaluator"]


def taylor_sine_coefficients(degree: int, scale_factor: float) -> List[float]:
    """Coefficients of ``sin(scale_factor * x)`` as a Taylor series in ``x``.

    Only odd powers are non-zero; the returned list has length
    ``degree + 1`` with entry ``k`` the coefficient of ``x**k``.
    """
    coefficients = [0.0] * (degree + 1)
    for k in range(1, degree + 1, 2):
        coefficients[k] = ((-1) ** ((k - 1) // 2)) * (scale_factor ** k) / math.factorial(k)
    return coefficients


def evaluate_polynomial(coefficients: Sequence[float], values: np.ndarray) -> np.ndarray:
    """Plaintext Horner evaluation (test oracle for the homomorphic path)."""
    result = np.zeros_like(np.asarray(values, dtype=np.float64))
    for coefficient in reversed(list(coefficients)):
        result = result * values + coefficient
    return result


class SineEvaluator:
    """Evaluates a fixed-degree polynomial of a ciphertext homomorphically."""

    def __init__(self, context: CkksContext, coefficients: Sequence[float]) -> None:
        self.context = context
        self.coefficients = list(coefficients)
        if not self.coefficients:
            raise ValueError("polynomial must have at least one coefficient")

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    @property
    def multiplicative_depth(self) -> int:
        """Levels consumed: one per power-doubling plus one for the sum."""
        return max(1, math.ceil(math.log2(max(2, self.degree)))) + 1

    def apply(self, ciphertext: Ciphertext, evaluator: Evaluator,
              encryptor: Encryptor, relinearization_key: SwitchKey) -> Ciphertext:
        """Homomorphically evaluate ``p(ct)`` using cached power ciphertexts."""
        powers = {1: ciphertext}
        # Build the needed powers with a square-and-multiply ladder.
        needed = [k for k, c in enumerate(self.coefficients) if k >= 1 and c != 0.0]
        if not needed:
            raise ValueError("polynomial has no non-constant terms")
        highest = max(needed)
        power = 1
        while power * 2 <= highest:
            squared = evaluator.multiply_and_rescale(powers[power], powers[power],
                                                     relinearization_key)
            powers[power * 2] = squared
            power *= 2
        for k in needed:
            if k not in powers:
                powers[k] = self._compose_power(k, powers, evaluator, relinearization_key)

        accumulator = None
        for k in needed:
            coefficient = self.coefficients[k]
            base = powers[k]
            plain = encryptor.encode(
                np.full(self.context.slot_count, coefficient), scale=base.scale,
                level=base.level,
            )
            term = evaluator.rescale(evaluator.multiply_plain(base, plain))
            accumulator = term if accumulator is None else self._add_aligned(
                accumulator, term, evaluator)
        constant = self.coefficients[0]
        if constant:
            plain = encryptor.encode(
                np.full(self.context.slot_count, constant), scale=accumulator.scale,
                level=accumulator.level,
            )
            accumulator = evaluator.add_plain(accumulator, plain)
        return accumulator

    # ------------------------------------------------------------------
    def _compose_power(self, exponent: int, powers, evaluator: Evaluator,
                       relinearization_key) -> Ciphertext:
        """Build ``ct**exponent`` from already-computed power ciphertexts."""
        remaining = exponent
        parts = []
        bit = 1
        while remaining:
            if remaining & 1:
                parts.append(powers[bit])
            remaining >>= 1
            bit <<= 1
        result = parts[0]
        for part in parts[1:]:
            result = evaluator.multiply_and_rescale(result, part, relinearization_key)
        powers[exponent] = result
        return result

    def _add_aligned(self, lhs: Ciphertext, rhs: Ciphertext,
                     evaluator: Evaluator) -> Ciphertext:
        """Add two ciphertexts whose scales may differ slightly.

        Power-of-two Taylor terms end up at marginally different scales
        because the chain primes are only approximately equal to the
        encoding scale; the difference is absorbed into the result scale,
        which is the standard approximate-arithmetic treatment.
        """
        lhs, rhs = evaluator.align(lhs, rhs)
        rhs = Ciphertext(rhs.c0, rhs.c1, lhs.scale, rhs.level)
        return evaluator.add(lhs, rhs)
