"""Homomorphic sine/cosine evaluation (the EvalMod stage of bootstrapping).

After ModRaise the plaintext is ``m + q0 * I`` with a small integer
polynomial ``I``.  Reducing modulo ``q0`` is approximated by

    q0/(2*pi) * sin(2*pi * t / q0)  ≈  t mod q0     (for |m| << q0)

The sine is evaluated with a truncated Taylor series (the paper cites the
variable-precision Taylor approximation [8]) at the reduced argument
``theta / 2^r``; the double-angle ladder then squares its way back up.
Because the exact double angle is ``sin(2a) = 2*sin(a)*cos(a)``, the
ladder needs *both* series — :class:`SineEvaluator` therefore evaluates
the sine and cosine polynomials over one shared square-and-multiply power
ladder (:meth:`SineEvaluator.apply_pair`), so the cosine costs only the
extra even-power terms, not a second ladder.

Every sequential entry point has a ``*_many`` sibling that runs the same
operation sequence through a
:class:`~repro.ckks.batched_evaluator.BatchedEvaluator`, fusing the
HMULT/CMULT/HADD streams of ``B`` independent ciphertexts into single
``(B, L, N)`` launches — bit-identical to the per-stream loop, with the
Taylor coefficients encoded once per level instead of once per stream.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..batched_evaluator import BatchedEvaluator
from ..ciphertext import Ciphertext, Plaintext
from ..context import CkksContext
from ..encryptor import Encryptor
from ..evaluator import Evaluator
from ..keys import SwitchKey

__all__ = [
    "taylor_sine_coefficients",
    "taylor_cosine_coefficients",
    "evaluate_polynomial",
    "SineEvaluator",
]


def taylor_sine_coefficients(degree: int, scale_factor: float) -> List[float]:
    """Coefficients of ``sin(scale_factor * x)`` as a Taylor series in ``x``.

    Only odd powers are non-zero; the returned list has length
    ``degree + 1`` with entry ``k`` the coefficient of ``x**k``.
    """
    coefficients = [0.0] * (degree + 1)
    for k in range(1, degree + 1, 2):
        coefficients[k] = ((-1) ** ((k - 1) // 2)) * (scale_factor ** k) / math.factorial(k)
    return coefficients


def taylor_cosine_coefficients(degree: int, scale_factor: float) -> List[float]:
    """Coefficients of ``cos(scale_factor * x)`` as a Taylor series in ``x``.

    Only even powers are non-zero (entry 0 is the constant 1); the list
    shares its power ladder with the sine series of the same degree.
    """
    coefficients = [0.0] * (degree + 1)
    coefficients[0] = 1.0
    for k in range(2, degree + 1, 2):
        coefficients[k] = ((-1) ** (k // 2)) * (scale_factor ** k) / math.factorial(k)
    return coefficients


def evaluate_polynomial(coefficients: Sequence[float], values: np.ndarray) -> np.ndarray:
    """Plaintext Horner evaluation (test oracle for the homomorphic path)."""
    result = np.zeros_like(np.asarray(values, dtype=np.float64))
    for coefficient in reversed(list(coefficients)):
        result = result * values + coefficient
    return result


class SineEvaluator:
    """Evaluates fixed-degree polynomials of a ciphertext homomorphically."""

    def __init__(self, context: CkksContext, coefficients: Sequence[float], *,
                 cosine_coefficients: Optional[Sequence[float]] = None) -> None:
        self.context = context
        self.coefficients = list(coefficients)
        if not self.coefficients:
            raise ValueError("polynomial must have at least one coefficient")
        self.cosine_coefficients = (list(cosine_coefficients)
                                    if cosine_coefficients is not None else None)

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    @property
    def multiplicative_depth(self) -> int:
        """Levels consumed: one per power-doubling plus one for the sum."""
        return max(1, math.ceil(math.log2(max(2, self.degree)))) + 1

    # ------------------------------------------------------------------
    # Sequential evaluation
    # ------------------------------------------------------------------
    def apply(self, ciphertext: Ciphertext, evaluator: Evaluator,
              encryptor: Encryptor, relinearization_key: SwitchKey) -> Ciphertext:
        """Homomorphically evaluate ``p(ct)`` using cached power ciphertexts."""
        needed = self._needed_terms(self.coefficients)
        powers = self._build_powers(ciphertext, needed, evaluator,
                                    relinearization_key)
        return self._accumulate(self.coefficients, needed, powers,
                                evaluator, encryptor)

    def apply_pair(self, ciphertext: Ciphertext, evaluator: Evaluator,
                   encryptor: Encryptor, relinearization_key: SwitchKey):
        """Evaluate the sine and cosine series over one shared power ladder.

        Returns ``(sin_ct, cos_ct)``; requires ``cosine_coefficients``.
        """
        if self.cosine_coefficients is None:
            raise ValueError("apply_pair needs cosine_coefficients")
        needed_sin = self._needed_terms(self.coefficients)
        needed_cos = self._needed_terms(self.cosine_coefficients)
        needed = sorted(set(needed_sin) | set(needed_cos))
        powers = self._build_powers(ciphertext, needed, evaluator,
                                    relinearization_key)
        sin_ct = self._accumulate(self.coefficients, needed_sin, powers,
                                  evaluator, encryptor)
        cos_ct = self._accumulate(self.cosine_coefficients, needed_cos, powers,
                                  evaluator, encryptor)
        return sin_ct, cos_ct

    # ------------------------------------------------------------------
    # Batched evaluation: the same operation sequence over B fused streams
    # ------------------------------------------------------------------
    def apply_many(self, ciphertexts: Sequence[Ciphertext],
                   batched_evaluator: BatchedEvaluator, encryptor: Encryptor,
                   relinearization_key: SwitchKey) -> List[Ciphertext]:
        """Batched :meth:`apply`: one fused HMULT/CMULT/HADD stream per step."""
        ciphertexts = list(ciphertexts)
        if not ciphertexts:
            return []
        needed = self._needed_terms(self.coefficients)
        powers = self._build_powers_many(ciphertexts, needed,
                                         batched_evaluator, relinearization_key)
        return self._accumulate_many(self.coefficients, needed, powers,
                                     batched_evaluator, encryptor)

    def apply_pair_many(self, ciphertexts: Sequence[Ciphertext],
                        batched_evaluator: BatchedEvaluator,
                        encryptor: Encryptor, relinearization_key: SwitchKey):
        """Batched :meth:`apply_pair`: returns ``(sin_streams, cos_streams)``."""
        if self.cosine_coefficients is None:
            raise ValueError("apply_pair_many needs cosine_coefficients")
        ciphertexts = list(ciphertexts)
        if not ciphertexts:
            return [], []
        needed_sin = self._needed_terms(self.coefficients)
        needed_cos = self._needed_terms(self.cosine_coefficients)
        needed = sorted(set(needed_sin) | set(needed_cos))
        powers = self._build_powers_many(ciphertexts, needed,
                                         batched_evaluator, relinearization_key)
        sin_cts = self._accumulate_many(self.coefficients, needed_sin, powers,
                                        batched_evaluator, encryptor)
        cos_cts = self._accumulate_many(self.cosine_coefficients, needed_cos,
                                        powers, batched_evaluator, encryptor)
        return sin_cts, cos_cts

    # ------------------------------------------------------------------
    # Shared internals
    # ------------------------------------------------------------------
    @staticmethod
    def _needed_terms(coefficients: Sequence[float]) -> List[int]:
        needed = [k for k, c in enumerate(coefficients) if k >= 1 and c != 0.0]
        if not needed:
            raise ValueError("polynomial has no non-constant terms")
        return needed

    def _build_powers(self, ciphertext: Ciphertext, needed: Sequence[int],
                      evaluator: Evaluator, relinearization_key) -> Dict[int, Ciphertext]:
        """Square-and-multiply ladder for every power in ``needed``."""
        powers = {1: ciphertext}
        highest = max(needed)
        power = 1
        while power * 2 <= highest:
            powers[power * 2] = evaluator.multiply_and_rescale(
                powers[power], powers[power], relinearization_key)
            power *= 2
        for k in needed:
            if k not in powers:
                self._compose_power(k, powers, evaluator, relinearization_key)
        return powers

    def _accumulate(self, coefficients: Sequence[float], needed: Sequence[int],
                    powers: Dict[int, Ciphertext], evaluator: Evaluator,
                    encryptor: Encryptor) -> Ciphertext:
        accumulator = None
        for k in needed:
            coefficient = coefficients[k]
            base = powers[k]
            plain = encryptor.encode(
                np.full(self.context.slot_count, coefficient), scale=base.scale,
                level=base.level,
            )
            term = evaluator.rescale(evaluator.multiply_plain(base, plain))
            accumulator = term if accumulator is None else self._add_aligned(
                accumulator, term, evaluator)
        constant = coefficients[0]
        if constant:
            plain = encryptor.encode(
                np.full(self.context.slot_count, constant), scale=accumulator.scale,
                level=accumulator.level,
            )
            accumulator = evaluator.add_plain(accumulator, plain)
        return accumulator

    def _compose_power(self, exponent: int, powers, evaluator: Evaluator,
                       relinearization_key) -> Ciphertext:
        """Build ``ct**exponent`` from already-computed power ciphertexts."""
        remaining = exponent
        parts = []
        bit = 1
        while remaining:
            if remaining & 1:
                parts.append(powers[bit])
            remaining >>= 1
            bit <<= 1
        result = parts[0]
        for part in parts[1:]:
            result = evaluator.multiply_and_rescale(result, part, relinearization_key)
        powers[exponent] = result
        return result

    def _add_aligned(self, lhs: Ciphertext, rhs: Ciphertext,
                     evaluator: Evaluator) -> Ciphertext:
        """Add two ciphertexts whose scales may differ slightly.

        Power-of-two Taylor terms end up at marginally different scales
        because the chain primes are only approximately equal to the
        encoding scale; the difference is absorbed into the result scale,
        which is the standard approximate-arithmetic treatment.
        """
        lhs, rhs = evaluator.align(lhs, rhs)
        rhs = Ciphertext(rhs.c0, rhs.c1, lhs.scale, rhs.level)
        return evaluator.add(lhs, rhs)

    # ------------------------------------------------------------------
    # Batched internals: identical per-stream op sequence, fused launches
    # ------------------------------------------------------------------
    def _build_powers_many(self, ciphertexts: List[Ciphertext],
                           needed: Sequence[int],
                           batched_evaluator: BatchedEvaluator,
                           relinearization_key) -> Dict[int, List[Ciphertext]]:
        powers = {1: ciphertexts}
        highest = max(needed)
        power = 1
        while power * 2 <= highest:
            powers[power * 2] = batched_evaluator.multiply_and_rescale(
                powers[power], powers[power], relinearization_key)
            power *= 2
        for k in needed:
            if k not in powers:
                self._compose_power_many(k, powers, batched_evaluator,
                                         relinearization_key)
        return powers

    def _compose_power_many(self, exponent: int, powers,
                            batched_evaluator: BatchedEvaluator,
                            relinearization_key) -> List[Ciphertext]:
        remaining = exponent
        parts = []
        bit = 1
        while remaining:
            if remaining & 1:
                parts.append(powers[bit])
            remaining >>= 1
            bit <<= 1
        result = parts[0]
        for part in parts[1:]:
            result = batched_evaluator.multiply_and_rescale(
                result, part, relinearization_key)
        powers[exponent] = result
        return result

    def _accumulate_many(self, coefficients: Sequence[float],
                         needed: Sequence[int],
                         powers: Dict[int, List[Ciphertext]],
                         batched_evaluator: BatchedEvaluator,
                         encryptor: Encryptor) -> List[Ciphertext]:
        accumulator = None
        for k in needed:
            bases = powers[k]
            plains = self._encoded_constant_per_level(
                coefficients[k], bases, encryptor)
            terms = batched_evaluator.rescale(
                batched_evaluator.multiply_plain(bases, plains))
            accumulator = terms if accumulator is None else \
                self._add_aligned_many(accumulator, terms, batched_evaluator)
        constant = coefficients[0]
        if constant:
            plains = self._encoded_constant_per_level(
                constant, accumulator, encryptor)
            accumulator = batched_evaluator.add_plain(accumulator, plains)
        return accumulator

    def _encoded_constant_per_level(self, value: float,
                                    ciphertexts: Sequence[Ciphertext],
                                    encryptor: Encryptor) -> List[Plaintext]:
        """Encode a constant once per (scale, level), not once per stream.

        Encoding is deterministic, so the shared plaintext is bit-identical
        to the per-stream encodes of the sequential path.
        """
        cache: Dict = {}
        plains = []
        for ciphertext in ciphertexts:
            key = (ciphertext.scale, ciphertext.level)
            plain = cache.get(key)
            if plain is None:
                plain = encryptor.encode(
                    np.full(self.context.slot_count, value),
                    scale=ciphertext.scale, level=ciphertext.level)
                cache[key] = plain
            plains.append(plain)
        return plains

    def _add_aligned_many(self, lhs_streams: Sequence[Ciphertext],
                          rhs_streams: Sequence[Ciphertext],
                          batched_evaluator: BatchedEvaluator) -> List[Ciphertext]:
        """Batched :meth:`_add_aligned`: absorb per-stream scale drift."""
        evaluator = batched_evaluator.evaluator
        aligned_lhs, aligned_rhs = [], []
        for lhs, rhs in zip(lhs_streams, rhs_streams):
            lhs, rhs = evaluator.align(lhs, rhs)
            aligned_lhs.append(lhs)
            aligned_rhs.append(Ciphertext(rhs.c0, rhs.c1, lhs.scale, rhs.level))
        return batched_evaluator.add(aligned_lhs, aligned_rhs)
