"""Homomorphic DFT stages: CoeffToSlot and SlotToCoeff.

These are the linear-transform stages of CKKS bootstrapping.  With ``E``
the ``N/2 x N`` slot-evaluation matrix (``E[j, k] = zeta_j^k``) split into
square halves ``E0 | E1``:

* **SlotToCoeff** maps two ciphertexts whose slots hold the coefficient
  halves ``t0, t1`` to one ciphertext whose slots hold ``E0 t0 + E1 t1``
  (the decoded view of the polynomial) — two BSGS transforms and one add;
* **CoeffToSlot** is the inverse: using ``t = (1/N)(conj(E)^T z + E^T
  conj(z))`` it produces the two coefficient-half ciphertexts from one
  ciphertext, with four BSGS transforms and one conjugation.

Both stages are exactly the BSGS-based homomorphic DFT the paper invokes
for its Bootstrap workflow (Figure 6).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..ciphertext import Ciphertext
from ..context import CkksContext
from ..encryptor import Encryptor
from ..evaluator import Evaluator
from ..keys import RotationKeySet
from .bsgs import BsgsLinearTransform

__all__ = ["embedding_matrix", "CoeffToSlot", "SlotToCoeff"]


def embedding_matrix(context: CkksContext) -> np.ndarray:
    """The ``N/2 x N`` matrix ``E[j, k] = zeta_j^k`` of the canonical embedding."""
    encoder = context.encoder
    n = context.ring_degree
    angles = np.pi * encoder.root_exponents.astype(np.float64) / n
    roots = np.exp(1j * angles)
    powers = np.arange(n)
    return roots[:, None] ** powers[None, :]


class SlotToCoeff:
    """Homomorphic evaluation of ``z = E0 t0 + E1 t1``."""

    def __init__(self, context: CkksContext) -> None:
        self.context = context
        full = embedding_matrix(context)
        half = context.slot_count
        self.transform0 = BsgsLinearTransform(context, full[:, :half])
        self.transform1 = BsgsLinearTransform(context, full[:, half:])

    def rotation_steps(self) -> List[int]:
        steps = set(self.transform0.rotation_steps())
        steps.update(self.transform1.rotation_steps())
        return sorted(steps)

    def apply(self, coeff_low: Ciphertext, coeff_high: Ciphertext,
              evaluator: Evaluator, encryptor: Encryptor,
              rotation_keys: RotationKeySet) -> Ciphertext:
        part0 = self.transform0.apply(coeff_low, evaluator, encryptor, rotation_keys)
        part1 = self.transform1.apply(coeff_high, evaluator, encryptor, rotation_keys)
        return evaluator.add(part0, part1)

    def apply_many(self, coeff_lows: Sequence[Ciphertext],
                   coeff_highs: Sequence[Ciphertext], batched_evaluator,
                   encryptor: Encryptor,
                   rotation_keys: RotationKeySet) -> List[Ciphertext]:
        """Batched :meth:`apply`: two fused BSGS transforms and one HADD."""
        part0 = self.transform0.apply_many(coeff_lows, batched_evaluator,
                                           encryptor, rotation_keys)
        part1 = self.transform1.apply_many(coeff_highs, batched_evaluator,
                                           encryptor, rotation_keys)
        return batched_evaluator.add(part0, part1)

    def reference(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        return self.transform0.reference(t0) + self.transform1.reference(t1)


class CoeffToSlot:
    """Homomorphic extraction of the coefficient halves into slot vectors."""

    def __init__(self, context: CkksContext) -> None:
        self.context = context
        full = embedding_matrix(context)
        half = context.slot_count
        n = context.ring_degree
        e0 = full[:, :half]
        e1 = full[:, half:]
        self.transform0_direct = BsgsLinearTransform(context, np.conj(e0).T / n)
        self.transform0_conj = BsgsLinearTransform(context, e0.T / n)
        self.transform1_direct = BsgsLinearTransform(context, np.conj(e1).T / n)
        self.transform1_conj = BsgsLinearTransform(context, e1.T / n)

    def rotation_steps(self) -> List[int]:
        steps = set()
        for transform in (self.transform0_direct, self.transform0_conj,
                          self.transform1_direct, self.transform1_conj):
            steps.update(transform.rotation_steps())
        return sorted(steps)

    def apply(self, ciphertext: Ciphertext, evaluator: Evaluator,
              encryptor: Encryptor,
              rotation_keys: RotationKeySet) -> Tuple[Ciphertext, Ciphertext]:
        conjugated = evaluator.conjugate(ciphertext, rotation_keys)
        low = evaluator.add(
            self.transform0_direct.apply(ciphertext, evaluator, encryptor, rotation_keys),
            self.transform0_conj.apply(conjugated, evaluator, encryptor, rotation_keys),
        )
        high = evaluator.add(
            self.transform1_direct.apply(ciphertext, evaluator, encryptor, rotation_keys),
            self.transform1_conj.apply(conjugated, evaluator, encryptor, rotation_keys),
        )
        return low, high

    def apply_many(self, ciphertexts: Sequence[Ciphertext], batched_evaluator,
                   encryptor: Encryptor, rotation_keys: RotationKeySet
                   ) -> Tuple[List[Ciphertext], List[Ciphertext]]:
        """Batched :meth:`apply`: one fused HCONJ, four fused BSGS stages."""
        conjugated = batched_evaluator.conjugate(ciphertexts, rotation_keys)
        lows = batched_evaluator.add(
            self.transform0_direct.apply_many(ciphertexts, batched_evaluator,
                                              encryptor, rotation_keys),
            self.transform0_conj.apply_many(conjugated, batched_evaluator,
                                            encryptor, rotation_keys),
        )
        highs = batched_evaluator.add(
            self.transform1_direct.apply_many(ciphertexts, batched_evaluator,
                                              encryptor, rotation_keys),
            self.transform1_conj.apply_many(conjugated, batched_evaluator,
                                            encryptor, rotation_keys),
        )
        return lows, highs

    def reference(self, slots: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        slots = np.asarray(slots, dtype=np.complex128)
        low = self.transform0_direct.reference(slots) + self.transform0_conj.reference(np.conj(slots))
        high = self.transform1_direct.reference(slots) + self.transform1_conj.reference(np.conj(slots))
        return low, high
