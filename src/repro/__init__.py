"""repro — a reproduction of *TensorFHE: Achieving Practical Computation on
Encrypted Data Using GPGPU* (HPCA 2023).

The package is layered (see DESIGN.md):

* :mod:`repro.backend` — pluggable compute substrates (numpy / BLAS
  float64 / multiprocess / torch / cupy) behind the batched-GEMM funnel;
* :mod:`repro.numtheory`, :mod:`repro.ntt`, :mod:`repro.tcu`, :mod:`repro.rns`
  — arithmetic substrates, including the tensor-core segmented NTT;
* :mod:`repro.kernels`, :mod:`repro.ckks` — the hierarchical CKKS
  reconstruction and the full FHE scheme (keys, evaluator, bootstrap);
* :mod:`repro.batching`, :mod:`repro.gpu`, :mod:`repro.perf`,
  :mod:`repro.workloads` — operation-level batching and the GPU performance
  model that reproduces the paper's evaluation;
* :mod:`repro.api` — the high-level facade (:class:`~repro.api.TensorFheContext`);
* :mod:`repro.serving` — the async multi-tenant serving layer that fills
  the fused (B, L, N) substrate from concurrent request traffic.
"""

from .api import TensorFheContext
from .backend import (
    available_backends,
    get_active_backend,
    set_active_backend,
    use_backend,
)
from .ckks import (
    Ciphertext,
    CkksContext,
    CkksParameters,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    Plaintext,
    get_preset,
)
from .ntt import available_engines, create_engine
from .perf import ModelParameters, NttVariant, OperationModel, WorkloadModel
from .serving import KeyRegistry, ServingConfig, ServingEngine
from .workloads import WORKLOADS, get_workload

__version__ = "1.0.0"

__all__ = [
    "TensorFheContext",
    "CkksParameters",
    "CkksContext",
    "KeyGenerator",
    "Encryptor",
    "Decryptor",
    "Evaluator",
    "Plaintext",
    "Ciphertext",
    "get_preset",
    "create_engine",
    "available_engines",
    "available_backends",
    "get_active_backend",
    "set_active_backend",
    "use_backend",
    "OperationModel",
    "ModelParameters",
    "WorkloadModel",
    "NttVariant",
    "ServingEngine",
    "ServingConfig",
    "KeyRegistry",
    "WORKLOADS",
    "get_workload",
    "__version__",
]
